package cmm

import (
	"sync"
	"testing"

	"cmm/internal/cat"
	"cmm/internal/telemetry"
)

// recordingSink captures controller events for assertions.
type recordingSink struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (r *recordingSink) Emit(e telemetry.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// TestTelemetryControllerEvents drives PT over the fake target with a
// recording sink: one event per epoch, sequential indices, the decision
// mirrored into the event, and the epoch's cycle split populated.
func TestTelemetryControllerEvents(t *testing.T) {
	ft := newFakeTarget([]fakeCore{
		{ipcOn: 0.5, ipcOff: 0.6, aggressive: true, victimPenalty: 0.4},
		{ipcOn: 1.0, ipcOff: 1.0},
		{ipcOn: 1.0, ipcOff: 1.0},
	})
	c, err := NewController(DefaultConfig(), ft, PT{})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingSink{}
	c.SetSink(rec)
	const epochs = 3
	if err := c.RunEpochs(epochs); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != epochs {
		t.Fatalf("got %d events, want %d", len(rec.events), epochs)
	}
	decs := c.Decisions()
	for i, e := range rec.events {
		if e.Type != telemetry.TypeEpoch {
			t.Errorf("event %d type %q, want %q", i, e.Type, telemetry.TypeEpoch)
		}
		if e.Epoch != i {
			t.Errorf("event %d carries epoch index %d", i, e.Epoch)
		}
		if e.Policy != "PT" {
			t.Errorf("event %d policy %q", i, e.Policy)
		}
		if !equalInts(e.Agg, decs[i].Detection.Agg) {
			t.Errorf("event %d Agg %v, decision %v", i, e.Agg, decs[i].Detection.Agg)
		}
		if !equalInts(e.Throttled, decs[i].Disabled) {
			t.Errorf("event %d Throttled %v, decision %v", i, e.Throttled, decs[i].Disabled)
		}
		if e.ExecCycles != DefaultConfig().ExecutionEpoch {
			t.Errorf("event %d ExecCycles %d, want %d", i, e.ExecCycles, DefaultConfig().ExecutionEpoch)
		}
		if e.ProfCycles == 0 {
			t.Errorf("event %d ProfCycles 0; PT always samples at least one interval", i)
		}
	}
	// The aggressor stays throttled: exactly one flip (off at epoch 0),
	// and the summary agrees with the event stream.
	flips := 0
	for _, e := range rec.events {
		if e.ThrottleFlip {
			flips++
		}
	}
	stats := SummarizeDecisions(decs)
	if stats.ThrottleFlips != flips {
		t.Errorf("SummarizeDecisions flips %d, events carried %d", stats.ThrottleFlips, flips)
	}
	if stats.Epochs != epochs {
		t.Errorf("stats.Epochs = %d, want %d", stats.Epochs, epochs)
	}
	if stats.Detections == 0 {
		t.Error("aggressor never detected")
	}
	if stats.SampledCombos == 0 {
		t.Error("no sampling intervals recorded")
	}
	// No sink, no events: the disabled path must not have accumulated
	// anything (overhead claim: a single nil check).
	c2, err := NewController(DefaultConfig(), ft, PT{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.RunEpochs(1); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetrySummarizeDecisions exercises flip/partition-change
// accounting on a synthetic history, including the first-epoch
// comparison against the reset state.
func TestTelemetrySummarizeDecisions(t *testing.T) {
	plan1 := &cat.Plan{Masks: map[int]uint64{0: 0xff, 1: 0xf}, ClosByCore: []int{0, 1}}
	plan1b := &cat.Plan{Masks: map[int]uint64{0: 0xff, 1: 0xf}, ClosByCore: []int{0, 1}}
	plan2 := &cat.Plan{Masks: map[int]uint64{0: 0xff, 1: 0x3}, ClosByCore: []int{0, 1}}
	decs := []Decision{
		{Disabled: []int{2}, Detection: Detection{Agg: []int{2}}}, // flip (vs reset), detection
		{Disabled: []int{2}},            // no change
		{Disabled: nil, Plan: plan1},    // flip back + partition change
		{Plan: plan1b},                  // same masks: no change
		{Plan: plan2, SampledCombos: 4}, // partition change
		{Detection: Detection{Agg: []int{0, 1}}, Disabled: []int{0, 1}}, // flip + plan dropped
	}
	got := SummarizeDecisions(decs)
	want := DecisionStats{
		Epochs:           6,
		Detections:       2,
		ThrottleFlips:    3,
		PartitionChanges: 3, // nil→plan1, plan1b→plan2, plan2→nil
		SampledCombos:    4,
	}
	if got != want {
		t.Errorf("SummarizeDecisions = %+v, want %+v", got, want)
	}
	if s := SummarizeDecisions(nil); s != (DecisionStats{}) {
		t.Errorf("empty history: %+v", s)
	}
}
