package cmm

import (
	"reflect"
	"testing"

	"cmm/internal/msr"
	"cmm/internal/pmu"
)

// cbpCores builds the canonical CBP test mix: a prefetch-friendly
// aggressor, a prefetch-unfriendly aggressor whose bandwidth pressure
// (prefetch- and demand-side) punishes everyone else, and a quiet victim.
// Throttling the unfriendly core trades a small self-slowdown for relief
// on both other cores, so the speedup-scored search must land on the
// unfriendly entity at the deepest level in the grid.
func cbpCores() []fakeCore {
	return []fakeCore{
		{ipcOn: 2.0, ipcOff: 0.5, aggressive: true},
		{ipcOn: 0.5, ipcOff: 0.55, aggressive: true, victimPenalty: 0.2, demandPenalty: 0.3},
		{ipcOn: 1, ipcOff: 1},
	}
}

func TestMBALevelGrid(t *testing.T) {
	cfg := DefaultConfig()
	if got, want := mbaLevelGrid(cfg), []uint64{10, 40}; !reflect.DeepEqual(got, want) {
		t.Fatalf("grid %v, want %v", got, want)
	}
	// Zeros are dropped: the unthrottled baseline is always measured and
	// never needs a grid slot.
	cfg.MBALevels = []uint64{0, 30}
	if got, want := mbaLevelGrid(cfg), []uint64{30}; !reflect.DeepEqual(got, want) {
		t.Fatalf("explicit-0 grid %v, want %v", got, want)
	}
	cfg.MBALevels = nil
	if got := mbaLevelGrid(cfg); len(got) != 0 {
		t.Fatalf("empty grid %v", got)
	}
}

func TestCPBWSamplesMBALevels(t *testing.T) {
	ft := newFakeTarget(cbpCores())
	c, err := NewController(DefaultConfig(), ft, &CPBW{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunEpochs(1); err != nil {
		t.Fatal(err)
	}
	d := c.LastDecision()
	if d.Policy != "CP+BW" {
		t.Fatalf("policy %q", d.Policy)
	}
	if !reflect.DeepEqual(d.Unfriendly, []int{1}) {
		t.Fatalf("unfriendly %v", d.Unfriendly)
	}
	// Prefetchers stay ON for everyone: CP+BW never throttles them.
	for core := 0; core < 3; core++ {
		if !ft.prefetchOn(core) {
			t.Fatalf("core %d prefetchers off under CP+BW", core)
		}
	}
	if len(d.Disabled) != 0 {
		t.Fatalf("CP+BW disabled prefetchers: %v", d.Disabled)
	}
	// The search profiles both entities and must pick the unfriendly core
	// at the deepest level (relief to both victims outweighs its own
	// slowdown; throttling the friendly streamer helps no one).
	if d.MBAPercent != 40 {
		t.Fatalf("MBAPercent %d, want 40", d.MBAPercent)
	}
	if !reflect.DeepEqual(d.MBAThrottled, []int{1}) {
		t.Fatalf("MBAThrottled %v", d.MBAThrottled)
	}
	if want := []uint64{0, 40, 0}; !reflect.DeepEqual(d.MBALevels, want) {
		t.Fatalf("MBALevels %v, want %v", d.MBALevels, want)
	}
	if d.MBAGain <= 1.1 || d.MBAGain >= 1.13 {
		t.Fatalf("MBAGain %.4f, want the profiled hm-speedup (~1.118)", d.MBAGain)
	}
	// The delay lands on the dedicated sampled CLOS, with the winner's
	// PQR moved there; the recorded plan keeps the core in its home class
	// (the cache layout is unchanged by the bandwidth partition).
	v, err := ft.ReadMSR(0, msr.MBAThrottleBase+mbaCLOSSampled)
	if err != nil || v != 40 {
		t.Fatalf("sampled CLOS MBA register = %d, %v; want 40", v, err)
	}
	pqr, err := ft.ReadMSR(1, msr.PQRAssoc)
	if err != nil || msr.ClosOf(pqr) != mbaCLOSSampled {
		t.Fatalf("winner PQR CLOS = %d, %v; want %d", msr.ClosOf(pqr), err, mbaCLOSSampled)
	}
	if d.Plan == nil || d.Plan.ClosByCore[1] != mbaCLOSUnfriendly {
		t.Fatalf("recorded plan lost the home class: %+v", d.Plan)
	}
	// probe + split + MBA baseline + 2 entities x 2 levels.
	if d.SampledCombos != 7 {
		t.Fatalf("SampledCombos %d, want 7", d.SampledCombos)
	}
	// The class CLOSes never carry sampling leftovers.
	for _, clos := range []uint32{mbaCLOSFriendly, mbaCLOSUnfriendly} {
		if v, _ := ft.ReadMSR(0, msr.MBAThrottleBase+clos); v != 0 {
			t.Fatalf("class CLOS %d keeps MBA delay %d", clos, v)
		}
	}
}

func TestCPBWPTCoordinatesAllThreeKnobs(t *testing.T) {
	ft := newFakeTarget(cbpCores())
	c, err := NewController(DefaultConfig(), ft, &CPBWPT{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunEpochs(1); err != nil {
		t.Fatal(err)
	}
	d := c.LastDecision()
	if d.Policy != "CP+BW+PT" {
		t.Fatalf("policy %q", d.Policy)
	}
	// Knob 1, cache: two disjoint partitions (Fig. 6c layout).
	if d.Plan == nil {
		t.Fatal("no CAT plan")
	}
	if d.Plan.Masks[d.Plan.ClosByCore[0]]&d.Plan.Masks[d.Plan.ClosByCore[1]] != 0 {
		t.Fatal("partitions overlap")
	}
	// Knob 2, prefetching: the unfriendly core's prefetchers go off (its
	// prefetches hurt), the friendly core's stay on.
	if !reflect.DeepEqual(d.Disabled, []int{1}) {
		t.Fatalf("Disabled %v, want [1]", d.Disabled)
	}
	if ft.prefetchOn(1) || !ft.prefetchOn(0) {
		t.Fatal("prefetcher state does not match the decision")
	}
	// Knob 3, bandwidth: demand-side pressure remains after the prefetch
	// cut, so the search still finds relief on the unfriendly entity.
	if d.MBAPercent != 40 || !reflect.DeepEqual(d.MBAThrottled, []int{1}) {
		t.Fatalf("MBA decision: percent %d throttled %v", d.MBAPercent, d.MBAThrottled)
	}
	v, err := ft.ReadMSR(0, msr.MBAThrottleBase+mbaCLOSSampled)
	if err != nil || v != 40 {
		t.Fatalf("sampled CLOS MBA register = %d, %v; want 40", v, err)
	}
	if d.MBAGain <= 1 {
		t.Fatalf("MBAGain %.4f, want > 1", d.MBAGain)
	}
}

// runCountTarget counts RunCycles invocations — every one inside Epoch is
// one profiling sampling interval, since the controller's execution epoch
// runs outside the policy.
type runCountTarget struct {
	*fakeTarget
	runs int
}

func (r *runCountTarget) RunCycles(n uint64) {
	r.runs++
	r.fakeTarget.RunCycles(n)
}

// TestCBPSampledCombosCountsEveryProfilingRun pins the decision-accounting
// rule: SampledCombos equals the number of simulated profiling runs even
// when a policy samples MBA levels in the same epoch as prefetch combos.
// (An undercount would flatter the CBP policies in the epoch-overhead
// comparison of sampled intervals vs. decision quality.)
func TestCBPSampledCombosCountsEveryProfilingRun(t *testing.T) {
	for _, p := range []Policy{&CPBW{}, &CPBWPT{}, CoordinatedMBA{}} {
		t.Run(p.Name(), func(t *testing.T) {
			rt := &runCountTarget{fakeTarget: newFakeTarget(cbpCores())}
			dec, err := p.Epoch(rt, DefaultConfig(), make([]pmu.Sample, 3))
			if err != nil {
				t.Fatal(err)
			}
			if dec.SampledCombos != rt.runs {
				t.Fatalf("SampledCombos %d, but %d profiling runs were simulated", dec.SampledCombos, rt.runs)
			}
			if rt.runs == 0 {
				t.Fatal("no profiling ran — mix not aggressive?")
			}
		})
	}
	// CP+BW+PT's full breakdown: probe + split + 2 prefetch combos (one
	// unfriendly entity) + MBA baseline + 2 entities x 2 levels.
	rt := &runCountTarget{fakeTarget: newFakeTarget(cbpCores())}
	dec, err := (&CPBWPT{}).Epoch(rt, DefaultConfig(), make([]pmu.Sample, 3))
	if err != nil {
		t.Fatal(err)
	}
	if dec.SampledCombos != 9 || rt.runs != 9 {
		t.Fatalf("CP+BW+PT sampled %d (ran %d), want 9", dec.SampledCombos, rt.runs)
	}
}

// TestCPBWReusesCachedMBAChoice pins the refresh schedule: a profiled
// bandwidth partition is reasserted from cache on the following epochs (no
// MBA sampling intervals) as long as the Agg split holds.
func TestCPBWReusesCachedMBAChoice(t *testing.T) {
	rt := &runCountTarget{fakeTarget: newFakeTarget(cbpCores())}
	p := &CPBW{}
	cfg := DefaultConfig()
	if _, err := p.Epoch(rt, cfg, make([]pmu.Sample, 3)); err != nil {
		t.Fatal(err)
	}
	if rt.runs != 7 {
		t.Fatalf("first epoch ran %d intervals, want 7", rt.runs)
	}
	rt.runs = 0
	dec, err := p.Epoch(rt, cfg, make([]pmu.Sample, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Second epoch: probe + split only — the MBA choice comes from cache
	// but is still reasserted and recorded in full.
	if rt.runs != 2 || dec.SampledCombos != 2 {
		t.Fatalf("cached epoch ran %d intervals (sampled %d), want 2", rt.runs, dec.SampledCombos)
	}
	if dec.MBAPercent != 40 || !reflect.DeepEqual(dec.MBALevels, []uint64{0, 40, 0}) {
		t.Fatalf("cached decision lost the choice: percent %d levels %v", dec.MBAPercent, dec.MBALevels)
	}
	if v, _ := rt.ReadMSR(0, msr.MBAThrottleBase+mbaCLOSSampled); v != 40 {
		t.Fatalf("cached choice not reasserted: register %d", v)
	}
}

// TestCPBWCloneIsolation pins Clone's contract for the stateful policies:
// a clone starts with an empty bandwidth cache (it must re-profile), and
// cloning leaves the original's cache intact.
func TestCPBWCloneIsolation(t *testing.T) {
	rt := &runCountTarget{fakeTarget: newFakeTarget(cbpCores())}
	p := &CPBW{}
	cfg := DefaultConfig()
	if _, err := p.Epoch(rt, cfg, make([]pmu.Sample, 3)); err != nil {
		t.Fatal(err)
	}
	clone, ok := p.Clone().(*CPBW)
	if !ok {
		t.Fatalf("Clone returned %T", p.Clone())
	}
	crt := &runCountTarget{fakeTarget: newFakeTarget(cbpCores())}
	if _, err := clone.Epoch(crt, cfg, make([]pmu.Sample, 3)); err != nil {
		t.Fatal(err)
	}
	if crt.runs != 7 {
		t.Fatalf("clone ran %d intervals, want 7 (fresh profile)", crt.runs)
	}
	rt.runs = 0
	if _, err := p.Epoch(rt, cfg, make([]pmu.Sample, 3)); err != nil {
		t.Fatal(err)
	}
	if rt.runs != 2 {
		t.Fatalf("original ran %d intervals after Clone, want 2 (cache kept)", rt.runs)
	}
}

func TestCPBWEmptyAggReleasesEverything(t *testing.T) {
	ft := newFakeTarget([]fakeCore{
		{ipcOn: 0.3, ipcOff: 0.3}, {ipcOn: 2.0, ipcOff: 2.0},
	})
	// Stale MBA from a previous epoch must be cleared on the quiet path —
	// any of the programmed CLOSes could have been the last target.
	for clos, stale := range map[uint32]uint64{
		mbaCLOSFriendly: 30, mbaCLOSUnfriendly: 90, mbaCLOSSampled: 40,
	} {
		if err := ft.WriteMSR(0, msr.MBAThrottleBase+clos, stale); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := NewController(DefaultConfig(), ft, &CPBW{})
	if err := c.RunEpochs(1); err != nil {
		t.Fatal(err)
	}
	d := c.LastDecision()
	if len(d.Detection.Agg) != 0 || d.MBAPercent != 0 || d.MBALevels != nil {
		t.Fatalf("quiet epoch decision: %+v", d)
	}
	for _, clos := range []uint32{mbaCLOSFriendly, mbaCLOSUnfriendly, mbaCLOSSampled} {
		if v, _ := ft.ReadMSR(0, msr.MBAThrottleBase+clos); v != 0 {
			t.Fatalf("stale MBA throttle %d on CLOS %d survives empty Agg", v, clos)
		}
	}
}

func TestCPBWPTEmptyAggFallsBackToDunn(t *testing.T) {
	ft := newFakeTarget([]fakeCore{
		{ipcOn: 0.3, ipcOff: 0.3}, {ipcOn: 2.0, ipcOff: 2.0},
	})
	if err := ft.WriteMSR(0, msr.MBAThrottleBase+mbaCLOSUnfriendly, 90); err != nil {
		t.Fatal(err)
	}
	c, _ := NewController(DefaultConfig(), ft, &CPBWPT{})
	if err := c.RunEpochs(1); err != nil {
		t.Fatal(err)
	}
	d := c.LastDecision()
	if !d.FellBackToDunn {
		t.Fatal("no Dunn fallback on empty Agg")
	}
	if v, _ := ft.ReadMSR(0, msr.MBAThrottleBase+mbaCLOSUnfriendly); v != 0 {
		t.Fatalf("stale MBA throttle %d survives fallback", v)
	}
}

// TestSummarizeDecisionsCountsMBAChanges covers the new aggregate: an MBA
// repartition counts once per change, not per epoch.
func TestSummarizeDecisionsCountsMBAChanges(t *testing.T) {
	decs := []Decision{
		{MBALevels: []uint64{0, 60, 0}}, // change vs reset state
		{MBALevels: []uint64{0, 60, 0}}, // steady
		{MBALevels: nil},                // released: change
		{MBALevels: []uint64{0, 0, 0}},  // all-zero == nil: steady
		{MBALevels: []uint64{20, 0, 0}}, // change
	}
	s := SummarizeDecisions(decs)
	if s.MBAChanges != 3 {
		t.Fatalf("MBAChanges %d, want 3", s.MBAChanges)
	}
}
