package cmm_test

// Integration tests: the policies driving the real simulator (the unit
// tests in package cmm use a scripted fake target). External test package
// to exercise the public surface the way the facade does.

import (
	"testing"

	"cmm/internal/cmm"
	"cmm/internal/msr"
	"cmm/internal/sim"
	"cmm/internal/workload"
)

func quadSystem(t testing.TB) *sim.System {
	t.Helper()
	var specs []workload.Spec
	for _, n := range []string{"410.bwaves", "rand_access", "429.mcf", "453.povray"} {
		s, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("unknown benchmark %s", n)
		}
		specs = append(specs, s)
	}
	sys, err := sim.New(sim.DefaultConfig(), specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func quickCfg() cmm.Config {
	cfg := cmm.DefaultConfig()
	cfg.ExecutionEpoch = 1_200_000
	cfg.SamplingInterval = 100_000
	return cfg
}

func TestSimCMMADetectsAndActs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator integration is slow")
	}
	sys := quadSystem(t)
	ctrl, err := cmm.NewController(quickCfg(), cmm.NewSimTarget(sys), &cmm.Coordinated{Variant: cmm.VariantA})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RunEpochs(2); err != nil {
		t.Fatal(err)
	}
	d := ctrl.LastDecision()
	// bwaves (core 0) and rand_access (core 1) are the aggressive pair.
	if !d.Detection.InAgg(0) || !d.Detection.InAgg(1) {
		t.Fatalf("Agg = %v, want cores 0 and 1", d.Detection.Agg)
	}
	// bwaves friendly, rand_access unfriendly and throttled.
	found := false
	for _, c := range d.Friendly {
		if c == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("bwaves not friendly: %+v", d)
	}
	throttled := false
	for _, c := range d.Disabled {
		if c == 1 {
			throttled = true
		}
	}
	if !throttled {
		t.Fatalf("rand_access not throttled: %+v", d)
	}
	// The MSR state matches the decision.
	v, err := sys.Bank().Read(1, msr.MiscFeatureControl)
	if err != nil || v != msr.DisableAll {
		t.Fatalf("core 1 MSR %#x, %v", v, err)
	}
	v, err = sys.Bank().Read(0, msr.MiscFeatureControl)
	if err != nil || v != 0 {
		t.Fatalf("core 0 MSR %#x, %v", v, err)
	}
	// The CAT masks match the plan.
	mask, err := sys.CAT().EffectiveMask(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Plan == nil || mask != d.Plan.Masks[d.Plan.ClosByCore[0]] {
		t.Fatalf("effective mask %#x does not match plan", mask)
	}
}

func TestSimPTConvergesToStableDecision(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator integration is slow")
	}
	sys := quadSystem(t)
	ctrl, err := cmm.NewController(quickCfg(), cmm.NewSimTarget(sys), cmm.PT{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RunEpochs(4); err != nil {
		t.Fatal(err)
	}
	ds := ctrl.Decisions()
	// Later epochs should agree on the throttle set (steady workloads).
	last := ds[len(ds)-1]
	prev := ds[len(ds)-2]
	if len(last.Disabled) != len(prev.Disabled) {
		t.Logf("decision flapping: %v vs %v (tolerated, but worth watching)",
			prev.Disabled, last.Disabled)
	}
	if ctrl.OverheadFraction() <= 0 || ctrl.OverheadFraction() > 0.6 {
		t.Fatalf("overhead fraction %g out of range", ctrl.OverheadFraction())
	}
}

func TestSimDunnProducesNestedMasks(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator integration is slow")
	}
	sys := quadSystem(t)
	ctrl, err := cmm.NewController(quickCfg(), cmm.NewSimTarget(sys), cmm.Dunn{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RunEpochs(2); err != nil {
		t.Fatal(err)
	}
	d := ctrl.LastDecision()
	if d.Plan == nil {
		t.Fatal("no plan")
	}
	for _, clos := range d.Plan.ClosByCore {
		m := d.Plan.Masks[clos]
		if m&1 == 0 {
			t.Fatalf("mask %#x not anchored at way 0 (not nested)", m)
		}
	}
}

func TestSimMBAPolicyProgramsThrottle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator integration is slow")
	}
	sys := quadSystem(t)
	ctrl, err := cmm.NewController(quickCfg(), cmm.NewSimTarget(sys), cmm.CoordinatedMBA{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RunEpochs(2); err != nil {
		t.Fatal(err)
	}
	d := ctrl.LastDecision()
	if len(d.MBAThrottled) == 0 {
		t.Fatalf("no MBA throttling applied: %+v", d)
	}
	// The memory controller must be applying the delay to those cores.
	for _, c := range d.MBAThrottled {
		if sys.Memory().Throttle(c) == 0 {
			t.Fatalf("core %d not throttled at the memory controller", c)
		}
	}
}

func TestSimControllerAdaptsToPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator integration is slow")
	}
	// Core 0 alternates between a streaming phase (prefetch aggressive)
	// and a random phase roughly every execution epoch; the front end
	// must flip its Agg membership across epochs.
	phased := workload.Spec{Name: "phased", Pattern: workload.Phased,
		WorkingSet: 64 << 20, StepBytes: 16, PhaseRefs: 220_000, MLP: 5, GapInstrs: 2}
	quiet, _ := workload.ByName("453.povray")
	sys, err := sim.New(sim.DefaultConfig(), []workload.Spec{phased, quiet, quiet, quiet}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	ctrl, err := cmm.NewController(cfg, cmm.NewSimTarget(sys), cmm.PT{})
	if err != nil {
		t.Fatal(err)
	}
	inAgg, outAgg := 0, 0
	for e := 0; e < 10; e++ {
		if err := ctrl.RunEpochs(1); err != nil {
			t.Fatal(err)
		}
		if ctrl.LastDecision().Detection.InAgg(0) {
			inAgg++
		} else {
			outAgg++
		}
	}
	if inAgg == 0 || outAgg == 0 {
		t.Fatalf("no phase adaptivity: inAgg=%d outAgg=%d", inAgg, outAgg)
	}
}
