package cmm

import "fmt"

// Config holds the framework's tunables. Paper values are given in the
// comments; the defaults scale cycle counts down for the simulator while
// keeping the paper's 50:1 execution:sampling ratio.
type Config struct {
	// ExecutionEpoch is the length of an execution epoch in cycles
	// (paper: 5e9).
	ExecutionEpoch uint64
	// SamplingInterval is the length of one profiling sampling interval
	// in cycles (paper: 1e8; ratio 50:1).
	SamplingInterval uint64

	// PGAMeanFraction relaxes the candidate step: a core is a candidate
	// when its PGA exceeds this fraction of the all-core mean PGA. 1.0
	// is the paper's strict "above the average"; the default 0.6 keeps
	// one-prefetch-per-miss aggressors (the Rand Access shape) from
	// hiding below a mean inflated by streaming cores.
	PGAMeanFraction float64
	// PMRThreshold filters candidate cores by L2 prefetch miss rate
	// (M-5): cores below it have high prefetch locality — their
	// prefetches mostly hit L2 and put no pressure on the LLC
	// (paper: "a threshold (say 70%)").
	PMRThreshold float64
	// PTRThreshold is the minimum L2 prefetch-miss traffic rate (M-3, in
	// requests/second) for a core to count as pressuring the LLC.
	PTRThreshold float64
	// LLCPTThreshold is the minimum LLC→memory prefetch traffic (M-7, in
	// prefetch misses/second) for an Agg core. The paper notes M-7
	// identifies "cores that issue a large number of prefetch requests
	// to memory"; it is what separates a cache-resident hot loop (no
	// memory pressure) from a Rand Access aggressor.
	LLCPTThreshold float64
	// FriendlyThreshold is the IPC speedup from prefetching above which
	// an Agg core is prefetch friendly (paper: "say 50%").
	FriendlyThreshold float64

	// MaxIndividual is the largest entity count whose full on/off
	// combination space is sampled directly; larger sets are clustered.
	MaxIndividual int
	// Groups is the number of K-Means groups for group-level throttling
	// (paper: 3, vs Panda et al.'s coarse 2).
	Groups int

	// PartitionFactor sizes the Agg partition in ways per Agg core
	// (paper: "1.5 times the size of the Agg set works well").
	PartitionFactor float64

	// MBAPercent is the Memory Bandwidth Allocation throttling applied to
	// prefetch-unfriendly cores by the CMM-mba extension (a multiple of
	// 10 in [0,90]).
	MBAPercent uint64

	// MBALevels is the grid of MBA delay percentages the CBP policies
	// (CP+BW, CP+BW+PT) profile per throttle-entity candidate, each a
	// multiple of 10 in [0,90]. Listed gentlest-first: single-entity
	// throttling wins cluster at low delays, and the sampling budget cuts
	// the grid's tail. Zeros are ignored — the unthrottled baseline is
	// always measured.
	MBALevels []uint64 `json:",omitempty"`
	// MBASampleBudget caps the (entity, level) sampling intervals one MBA
	// refresh may spend — each costs a full sampling interval on top of
	// the prefetch-combo search, so this bounds the three-way policies'
	// profiling overhead. 0 disables MBA sampling entirely.
	MBASampleBudget int `json:",omitempty"`
	// MBARefreshEpochs is how many epochs a profiled bandwidth partition
	// is reused before re-profiling (the Agg split changing forces an
	// early refresh). 1 re-profiles every epoch.
	MBARefreshEpochs int `json:",omitempty"`

	// ComboRefreshEpochs is how many epochs the coordinated policies reuse
	// a profiled friendliness split + prefetch-combo decision before
	// re-profiling, provided the detected Agg set is unchanged (a changed
	// set forces an early refresh). Profiling cost per epoch then amortizes
	// from 2+2^entities sampling intervals down to the single detection
	// probe, which is what keeps the control loop sublinear in cores on
	// many-core geometries. 0 or 1 re-profiles every epoch (the paper's
	// schedule).
	ComboRefreshEpochs int `json:",omitempty"`
}

// DefaultConfig returns the scaled-down paper configuration.
func DefaultConfig() Config {
	return Config{
		ExecutionEpoch:     3_000_000,
		SamplingInterval:   150_000,
		PGAMeanFraction:    0.6,
		PMRThreshold:       0.70,
		PTRThreshold:       1e7,
		LLCPTThreshold:     2.5e7,
		FriendlyThreshold:  0.50,
		MaxIndividual:      3,
		Groups:             3,
		PartitionFactor:    1.5,
		MBAPercent:         50,
		MBALevels:          []uint64{10, 40},
		MBASampleBudget:    8,
		MBARefreshEpochs:   4,
		ComboRefreshEpochs: 1,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.ExecutionEpoch == 0:
		return fmt.Errorf("cmm: ExecutionEpoch must be positive")
	case c.SamplingInterval == 0:
		return fmt.Errorf("cmm: SamplingInterval must be positive")
	case c.SamplingInterval > c.ExecutionEpoch:
		return fmt.Errorf("cmm: SamplingInterval %d exceeds ExecutionEpoch %d",
			c.SamplingInterval, c.ExecutionEpoch)
	case c.PGAMeanFraction <= 0:
		return fmt.Errorf("cmm: PGAMeanFraction %g must be positive", c.PGAMeanFraction)
	case c.PMRThreshold < 0 || c.PMRThreshold > 1:
		return fmt.Errorf("cmm: PMRThreshold %g must be in [0,1]", c.PMRThreshold)
	case c.LLCPTThreshold < 0:
		return fmt.Errorf("cmm: LLCPTThreshold %g must be >= 0", c.LLCPTThreshold)
	case c.PTRThreshold < 0:
		return fmt.Errorf("cmm: PTRThreshold %g must be >= 0", c.PTRThreshold)
	case c.FriendlyThreshold < 0:
		return fmt.Errorf("cmm: FriendlyThreshold %g must be >= 0", c.FriendlyThreshold)
	case c.MaxIndividual < 1:
		return fmt.Errorf("cmm: MaxIndividual %d must be >= 1", c.MaxIndividual)
	case c.Groups < 1:
		return fmt.Errorf("cmm: Groups %d must be >= 1", c.Groups)
	case c.PartitionFactor <= 0:
		return fmt.Errorf("cmm: PartitionFactor %g must be positive", c.PartitionFactor)
	case c.MBAPercent > 90 || c.MBAPercent%10 != 0:
		return fmt.Errorf("cmm: MBAPercent %d must be a multiple of 10 in [0,90]", c.MBAPercent)
	case c.MBASampleBudget < 0:
		return fmt.Errorf("cmm: MBASampleBudget %d must be >= 0", c.MBASampleBudget)
	case c.MBARefreshEpochs < 1:
		return fmt.Errorf("cmm: MBARefreshEpochs %d must be >= 1", c.MBARefreshEpochs)
	case c.ComboRefreshEpochs < 0:
		return fmt.Errorf("cmm: ComboRefreshEpochs %d must be >= 0", c.ComboRefreshEpochs)
	}
	for _, lvl := range c.MBALevels {
		if lvl > 90 || lvl%10 != 0 {
			return fmt.Errorf("cmm: MBA level %d must be a multiple of 10 in [0,90]", lvl)
		}
	}
	return nil
}
