package cmm

import (
	"fmt"
	"sort"

	"cmm/internal/cat"
	"cmm/internal/pmu"
)

// Coordinated bandwidth partitioning (CBP): the third back-end knob. The
// CBP follow-up to the paper jointly manages cache partitioning, memory
// bandwidth partitioning, and prefetch throttling; these policies bring
// that axis into the epoch controller. Both reuse the fixed-CLOS Fig. 6(c)
// cache layout (CLOS 1 = friendly, CLOS 2 = unfriendly) and profile MBA
// delay levels on throttle entities drawn from the same friendliness and
// K-Means machinery the prefetch search uses — one sampling interval per
// (entity, level) candidate, capped by Config.MBASampleBudget, re-profiled
// every Config.MBARefreshEpochs epochs and reasserted from cache between
// refreshes so the steady-state overhead matches the prefetch-only
// policies.

// mbaCLOSSampled is the dedicated class of service for the bandwidth
// target: the sampled entity moves here with its home class's cache mask,
// so the MBA delay lands on exactly those cores while their cache
// partition stays put.
const mbaCLOSSampled = 3

// twoClassPlan builds the Fig. 6(c) layout over fixed CLOS ids: friendly
// cores in CLOS mbaCLOSFriendly with a small low partition, unfriendly
// cores in CLOS mbaCLOSUnfriendly with a small adjacent partition, and
// everyone else in CLOS0 with the full mask.
func twoClassPlan(t Target, cfg Config, friendly, unfriendly []int) (cat.Plan, error) {
	catCfg := t.CATConfig()
	plan := cat.NewPlan(t.NumCores(), catCfg.FullMask())
	wF := aggWays(cfg, catCfg, len(friendly))
	if len(friendly) > 0 {
		mask, err := catCfg.Mask(0, wF)
		if err != nil {
			return cat.Plan{}, err
		}
		plan.Masks[mbaCLOSFriendly] = mask
		for _, c := range friendly {
			plan.ClosByCore[c] = mbaCLOSFriendly
		}
	}
	if len(unfriendly) > 0 {
		start := 0
		if len(friendly) > 0 {
			start = wF
		}
		wU := aggWays(cfg, catCfg, len(unfriendly))
		if start+wU > catCfg.Ways {
			start = catCfg.Ways - wU
		}
		mask, err := catCfg.Mask(start, wU)
		if err != nil {
			return cat.Plan{}, err
		}
		plan.Masks[mbaCLOSUnfriendly] = mask
		for _, c := range unfriendly {
			plan.ClosByCore[c] = mbaCLOSUnfriendly
		}
	}
	return plan, nil
}

// mbaLevelGrid returns the nonzero delay levels to profile per candidate,
// in configuration order (gentlest first by default — single-entity wins
// cluster at low delays, and the budget may cut the tail).
func mbaLevelGrid(cfg Config) []uint64 {
	grid := make([]uint64, 0, len(cfg.MBALevels))
	for _, lvl := range cfg.MBALevels {
		if lvl != 0 {
			grid = append(grid, lvl)
		}
	}
	return grid
}

// releaseMBA zeroes the delay on every CLOS the CBP policies program.
func releaseMBA(alloc *cat.Allocator) error {
	for _, clos := range []int{mbaCLOSFriendly, mbaCLOSUnfriendly, mbaCLOSSampled} {
		if err := alloc.SetMBA(clos, 0); err != nil {
			return err
		}
	}
	return nil
}

// mbaCandidate is one sampled bandwidth-partition target: a throttle
// entity (individual core or K-Means group, exactly as the prefetch
// search builds them) plus the CLOS of its home class.
type mbaCandidate struct {
	cores []int
	home  int
}

// mbaCandidates lists the throttle entities of both Agg classes in
// sampling priority order: classes interleaved friendly-first (streamers
// are the usual bandwidth hogs), entities within a class loudest-first by
// summed prefetch traffic. The budget cuts this list from the back.
func mbaCandidates(s *mbaSampler, cfg Config, det Detection, friendly, unfriendly []int) []mbaCandidate {
	byTraffic := func(ents []entity) {
		sort.SliceStable(ents, func(i, j int) bool {
			ti, tj := 0.0, 0.0
			for _, c := range ents[i].Cores {
				ti += det.PTR[c]
			}
			for _, c := range ents[j].Cores {
				tj += det.PTR[c]
			}
			return ti > tj
		})
	}
	// Two scratches: both classes' entities must be alive at once for the
	// interleave.
	f := s.fEnts.entities(friendly, det.PTR, cfg)
	u := s.uEnts.entities(unfriendly, det.PTR, cfg)
	byTraffic(f)
	byTraffic(u)
	out := make([]mbaCandidate, 0, len(f)+len(u))
	for i := 0; i < len(f) || i < len(u); i++ {
		if i < len(f) {
			out = append(out, mbaCandidate{cores: f[i].Cores, home: mbaCLOSFriendly})
		}
		if i < len(u) {
			out = append(out, mbaCandidate{cores: u[i].Cores, home: mbaCLOSUnfriendly})
		}
	}
	return out
}

// speedupHM is the harmonic mean of per-core speedups of ipcs over base —
// the profiling proxy for the harmonic-speedup metric the figures report.
// Raw hm_ipc would chase the absolute IPC of the slowest core and happily
// throttle a whole streamer class into the ground to buy it a few percent;
// relative speedups accept a candidate only when the victims' gains
// outweigh the throttled cores' slowdowns.
func speedupHM(ipcs, base []float64) (float64, error) {
	if len(ipcs) != len(base) {
		// A per-node aggregation bug upstream (mismatched geometries)
		// would otherwise silently score garbage.
		return 0, fmt.Errorf("cmm: speedupHM: %d sampled IPCs vs %d baseline cores", len(ipcs), len(base))
	}
	sum := 0.0
	for i := range ipcs {
		if ipcs[i] <= 0 {
			return 0, nil
		}
		sum += base[i] / ipcs[i]
	}
	if sum <= 0 {
		return 0, nil
	}
	return float64(len(ipcs)) / sum, nil
}

// mbaLevelVector expands a chosen level into the per-core MBALevels vector
// recorded on the decision (nil when nothing is throttled).
func mbaLevelVector(n int, throttled []int, level uint64) []uint64 {
	if level == 0 || len(throttled) == 0 {
		return nil
	}
	out := make([]uint64, n)
	for _, c := range throttled {
		out[c] = level
	}
	return out
}

// mbaChoice is a profiled bandwidth-partition decision: which cores to
// delay, at what level, under which class split it was measured.
type mbaChoice struct {
	cores []int
	home  int
	level uint64
	// score is the speedupHM the winning interval measured (1 when the
	// choice is "no throttling").
	score float64
	// friendly and unfriendly pin the Agg split the choice was profiled
	// under; a different split invalidates the cache.
	friendly, unfriendly []int
	// age counts epochs since profiling, for the refresh schedule.
	age int
}

// mbaSampler is the CBP policies' bandwidth-partitioning engine and the
// reason they are stateful: profiling every epoch would double the
// sampling overhead of the prefetch-only policies, so the winning choice
// is cached and reasserted until it goes stale (the split changed or
// MBARefreshEpochs epochs passed). The zero value has nothing cached.
type mbaSampler struct {
	choice mbaChoice
	valid  bool

	// fEnts/uEnts back the candidate entities of the two Agg classes;
	// anything cached in choice must be copied out of them.
	fEnts entityScratch
	uEnts entityScratch
}

// epoch applies or refreshes the bandwidth partition for one controller
// epoch, after the cache plan has been applied and all MBA delays
// released. It records the outcome on dec and returns how many sampling
// intervals it ran (every one must count toward Decision.SampledCombos).
func (s *mbaSampler) epoch(t Target, cfg Config, alloc *cat.Allocator, plan cat.Plan, det Detection, dec *Decision) (int, error) {
	if s.valid && s.choice.age < cfg.MBARefreshEpochs &&
		equalInts(s.choice.friendly, dec.Friendly) && equalInts(s.choice.unfriendly, dec.Unfriendly) {
		s.choice.age++
		if err := s.apply(alloc, plan); err != nil {
			return 0, err
		}
		s.record(t, dec)
		return 0, nil
	}

	s.valid = false
	s.choice = mbaChoice{
		score:      1,
		friendly:   append([]int(nil), dec.Friendly...),
		unfriendly: append([]int(nil), dec.Unfriendly...),
	}
	grid := mbaLevelGrid(cfg)
	cands := mbaCandidates(s, cfg, det, dec.Friendly, dec.Unfriendly)
	sampled := 0
	if cfg.MBASampleBudget > 0 && len(grid) > 0 && len(cands) > 0 {
		// Unthrottled baseline interval: the speedup reference.
		base := ipcsOf(sampleInterval(t, cfg.SamplingInterval))
		sampled++
	search:
		for _, cand := range cands {
			for _, lvl := range grid {
				if sampled-1 >= cfg.MBASampleBudget {
					break search
				}
				if err := moveToSampledCLOS(alloc, plan, cand, lvl); err != nil {
					return sampled, err
				}
				samp := ipcsOf(sampleInterval(t, cfg.SamplingInterval))
				sampled++
				score, err := speedupHM(samp, base)
				if err != nil {
					return sampled, err
				}
				if score > s.choice.score {
					// Copy: cand.cores aliases the entity scratch, which
					// the next refresh overwrites, while the choice lives
					// across epochs.
					s.choice.cores = append(s.choice.cores[:0], cand.cores...)
					s.choice.home = cand.home
					s.choice.level = lvl
					s.choice.score = score
				}
				// Send the candidate home and release before the next one.
				if err := restoreHomeCLOS(alloc, cand); err != nil {
					return sampled, err
				}
			}
		}
	}
	s.choice.age = 1
	s.valid = true
	if err := s.apply(alloc, plan); err != nil {
		return sampled, err
	}
	s.record(t, dec)
	return sampled, nil
}

// apply programs the cached choice: the winning entity moves to the
// sampled CLOS (keeping its home cache mask) with the delay set. A level-0
// choice leaves the released state as is.
func (s *mbaSampler) apply(alloc *cat.Allocator, plan cat.Plan) error {
	if s.choice.level == 0 {
		return nil
	}
	return moveToSampledCLOS(alloc, plan, mbaCandidate{cores: s.choice.cores, home: s.choice.home}, s.choice.level)
}

// record writes the choice's outcome onto the decision.
func (s *mbaSampler) record(t Target, dec *Decision) {
	dec.MBAGain = s.choice.score
	dec.MBAPercent = s.choice.level
	if s.choice.level > 0 {
		dec.MBAThrottled = sortedCopy(s.choice.cores)
	}
	dec.MBALevels = mbaLevelVector(t.NumCores(), dec.MBAThrottled, s.choice.level)
}

// reset drops the cache (quiet epochs: nothing aggressive to partition).
func (s *mbaSampler) reset() { *s = mbaSampler{} }

// moveToSampledCLOS gives the sampled CLOS the candidate's home cache mask,
// moves the candidate's cores there, and programs the delay.
func moveToSampledCLOS(alloc *cat.Allocator, plan cat.Plan, cand mbaCandidate, lvl uint64) error {
	if err := alloc.SetMask(mbaCLOSSampled, plan.Masks[cand.home]); err != nil {
		return err
	}
	for _, c := range cand.cores {
		if err := alloc.Assign(c, mbaCLOSSampled); err != nil {
			return err
		}
	}
	return alloc.SetMBA(mbaCLOSSampled, lvl)
}

// restoreHomeCLOS sends a sampled candidate back to its home class and
// releases the sampled CLOS's delay.
func restoreHomeCLOS(alloc *cat.Allocator, cand mbaCandidate) error {
	for _, c := range cand.cores {
		if err := alloc.Assign(c, cand.home); err != nil {
			return err
		}
	}
	return alloc.SetMBA(mbaCLOSSampled, 0)
}

// CPBW partitions cache and bandwidth, leaving prefetchers untouched: the
// Fig. 6(c) cache layout plus a profiled MBA delay on whichever throttle
// entity profiling favors. It is the two-way (CP+BW) point of the
// three-way comparison.
type CPBW struct {
	mba mbaSampler
}

// Name implements Policy.
func (*CPBW) Name() string { return "CP+BW" }

// Clone implements Policy: a fresh instance with an empty bandwidth
// cache, so concurrent runs never share profiling state.
func (*CPBW) Clone() Policy { return &CPBW{} }

// Epoch implements Policy.
func (p *CPBW) Epoch(t Target, cfg Config, exec []pmu.Sample) (Decision, error) {
	if err := setPrefetchers(t, nil); err != nil {
		return Decision{}, err
	}
	probe := sampleInterval(t, cfg.SamplingInterval)
	det := DetectAgg(probe, t.CoreGHz(), cfg)
	dec := Decision{Policy: p.Name(), Detection: det, SampledCombos: 1}
	alloc := allocatorFor(t)

	if len(det.Agg) == 0 {
		p.mba.reset()
		if err := resetCAT(t); err != nil {
			return Decision{}, err
		}
		if err := releaseMBA(alloc); err != nil {
			return Decision{}, err
		}
		return dec, nil
	}

	// Second sampling interval: Agg prefetchers off — friendliness split.
	ipcOn := ipcsOf(probe)
	if err := setPrefetchers(t, det.Agg); err != nil {
		return Decision{}, err
	}
	off := sampleInterval(t, cfg.SamplingInterval)
	dec.SampledCombos++
	ipcOff := ipcsOf(off)
	if err := setPrefetchers(t, nil); err != nil {
		return Decision{}, err
	}
	dec.Friendly, dec.Unfriendly = SplitFriendly(det.Agg, ipcOn, ipcOff, cfg.FriendlyThreshold)

	plan, err := twoClassPlan(t, cfg, dec.Friendly, dec.Unfriendly)
	if err != nil {
		return Decision{}, err
	}
	if err := applyPlan(t, plan); err != nil {
		return Decision{}, err
	}
	dec.Plan = &plan
	if err := releaseMBA(alloc); err != nil {
		return Decision{}, err
	}

	sampled, err := p.mba.epoch(t, cfg, alloc, plan, det, &dec)
	dec.SampledCombos += sampled
	if err != nil {
		return Decision{}, err
	}
	dec.BestScore = dec.MBAGain
	return dec, nil
}

// CPBWPT is the full three-way coordination: the Fig. 6(c) cache layout,
// group-level prefetch throttling of the unfriendly class (the existing
// friendliness/K-Means machinery), and a profiled bandwidth partition on
// top of the chosen prefetch combination — CBP's joint management of all
// three back-end resources under one bounded sampling budget.
type CPBWPT struct {
	mba  mbaSampler
	gate comboGate
	ents entityScratch
}

// Name implements Policy.
func (*CPBWPT) Name() string { return "CP+BW+PT" }

// Clone implements Policy: a fresh instance with an empty bandwidth
// cache, so concurrent runs never share profiling state.
func (*CPBWPT) Clone() Policy { return &CPBWPT{} }

// Epoch implements Policy.
func (p *CPBWPT) Epoch(t Target, cfg Config, exec []pmu.Sample) (Decision, error) {
	if err := setPrefetchers(t, nil); err != nil {
		return Decision{}, err
	}
	probe := sampleInterval(t, cfg.SamplingInterval)
	det := DetectAgg(probe, t.CoreGHz(), cfg)
	dec := Decision{Policy: p.Name(), Detection: det, SampledCombos: 1}
	alloc := allocatorFor(t)

	if len(det.Agg) == 0 {
		// Fig. 6(d): nothing aggressive — Dunn partitioning, MBA released.
		p.mba.reset()
		p.gate.reset()
		plan, err := dunnPlan(t, exec)
		if err != nil {
			return Decision{}, err
		}
		if err := applyPlan(t, plan); err != nil {
			return Decision{}, err
		}
		if err := releaseMBA(alloc); err != nil {
			return Decision{}, err
		}
		dec.Plan = &plan
		dec.FellBackToDunn = true
		return dec, nil
	}

	if p.gate.fresh(cfg, det.Agg) {
		// Gated epoch: reassert the cached split + combo for the probe's
		// cost; the bandwidth sampler keeps its own (split-keyed) cache.
		p.gate.age++
		dec.Friendly = append([]int(nil), p.gate.friendly...)
		dec.Unfriendly = append([]int(nil), p.gate.unfriendly...)
		plan, err := twoClassPlan(t, cfg, dec.Friendly, dec.Unfriendly)
		if err != nil {
			return Decision{}, err
		}
		if err := applyPlan(t, plan); err != nil {
			return Decision{}, err
		}
		dec.Plan = &plan
		if err := releaseMBA(alloc); err != nil {
			return Decision{}, err
		}
		dec.BestScore = p.gate.score
		if len(p.gate.disabled) > 0 {
			dec.Disabled = append([]int(nil), p.gate.disabled...)
		}
		if err := setPrefetchers(t, dec.Disabled); err != nil {
			return Decision{}, err
		}
		sampled, err := p.mba.epoch(t, cfg, alloc, plan, det, &dec)
		dec.SampledCombos += sampled
		if err != nil {
			return Decision{}, err
		}
		return dec, nil
	}

	// Second sampling interval: Agg prefetchers off — friendliness split.
	ipcOn := ipcsOf(probe)
	if err := setPrefetchers(t, det.Agg); err != nil {
		return Decision{}, err
	}
	off := sampleInterval(t, cfg.SamplingInterval)
	dec.SampledCombos++
	ipcOff := ipcsOf(off)
	if err := setPrefetchers(t, nil); err != nil {
		return Decision{}, err
	}
	dec.Friendly, dec.Unfriendly = SplitFriendly(det.Agg, ipcOn, ipcOff, cfg.FriendlyThreshold)

	plan, err := twoClassPlan(t, cfg, dec.Friendly, dec.Unfriendly)
	if err != nil {
		return Decision{}, err
	}
	if err := applyPlan(t, plan); err != nil {
		return Decision{}, err
	}
	dec.Plan = &plan
	// Profile prefetch combos unthrottled: newly (re)assigned CLOS could
	// carry a stale delay from the previous epoch.
	if err := releaseMBA(alloc); err != nil {
		return Decision{}, err
	}

	// Group-level prefetch throttling of the unfriendly cores, then the
	// bandwidth partition on top of the winning combination.
	if len(dec.Unfriendly) > 0 {
		ents := p.ents.entities(dec.Unfriendly, det.PTR, cfg)
		best, score, _, _, sampled, err := comboSearch(t, cfg, ents)
		if err != nil {
			return Decision{}, err
		}
		dec.SampledCombos += sampled
		dec.BestScore = score
		dec.Disabled = disabledFor(ents, best)
		if err := setPrefetchers(t, dec.Disabled); err != nil {
			return Decision{}, err
		}
	}
	p.gate.store(det.Agg, dec.Friendly, dec.Unfriendly, dec.Disabled, dec.BestScore)

	// Every profiling run counts, prefetch combos and MBA levels alike:
	// the epoch-overhead comparison (sampled intervals vs. decision
	// quality) would silently flatter CBP otherwise.
	sampled, err := p.mba.epoch(t, cfg, alloc, plan, det, &dec)
	dec.SampledCombos += sampled
	if err != nil {
		return Decision{}, err
	}
	return dec, nil
}
