package cmm

import (
	"fmt"

	"cmm/internal/cat"
	"cmm/internal/pmu"
)

// Variant selects one of the paper's coordinated partition layouts
// (Fig. 6): where the friendly and unfriendly Agg cores live.
type Variant uint8

const (
	// VariantA puts the whole Agg set into one small partition and
	// throttles the unfriendly cores inside it (Fig. 6a).
	VariantA Variant = iota
	// VariantB puts only the prefetch-friendly cores into the small
	// partition; unfriendly cores share the whole cache but are
	// throttled (Fig. 6b).
	VariantB
	// VariantC gives friendly and unfriendly cores two separate small
	// partitions, throttling the unfriendly ones (Fig. 6c).
	VariantC
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantA:
		return "CMM-a"
	case VariantB:
		return "CMM-b"
	case VariantC:
		return "CMM-c"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Coordinated is the paper's contribution proper: coordinated throttling —
// first partition the cache around the Agg set, then apply group-level
// prefetch throttling to the prefetch-unfriendly cores only. Friendly
// cores always keep their prefetchers (their performance comes from
// prefetching, not cache space); when the Agg set is empty the policy
// falls back to the Dunn partitioning (Fig. 6d).
// Coordinated is stateful: it caches its profiled decision in a comboGate
// (reused while the Agg set is stable, per Config.ComboRefreshEpochs) and
// reuses entity-grouping scratch buffers, so it is a pointer policy.
type Coordinated struct {
	// Variant selects the Fig. 6 layout (default VariantA).
	Variant Variant

	gate comboGate
	ents entityScratch
}

// Name implements Policy.
func (p *Coordinated) Name() string { return p.Variant.String() }

// Clone implements Policy: a fresh instance with an empty profiling cache,
// so concurrent runs never share gate or scratch state.
func (p *Coordinated) Clone() Policy { return &Coordinated{Variant: p.Variant} }

// Epoch implements Policy.
func (p *Coordinated) Epoch(t Target, cfg Config, exec []pmu.Sample) (Decision, error) {
	// Sampling interval 1: all prefetchers on — detection statistics.
	if err := setPrefetchers(t, nil); err != nil {
		return Decision{}, err
	}
	probe := sampleInterval(t, cfg.SamplingInterval)
	det := DetectAgg(probe, t.CoreGHz(), cfg)
	dec := Decision{Policy: p.Name(), Detection: det, SampledCombos: 1}
	return p.epochWithDetection(t, cfg, probe, det, dec, exec)
}

// epochWithDetection finishes an epoch whose detection probe already ran:
// friendliness split, variant partitioning, and the combo search. The
// learned policy (CMM-L) calls it directly on a fallback so the probe it
// predicted from is reused rather than re-sampled; dec carries the
// caller's policy name and any prediction metadata through untouched.
func (p *Coordinated) epochWithDetection(t Target, cfg Config, probe []pmu.Sample, det Detection, dec Decision, exec []pmu.Sample) (Decision, error) {
	if len(det.Agg) == 0 {
		// Fig. 6(d): nothing aggressive — Dunn partitioning instead.
		p.gate.reset()
		plan, err := dunnPlan(t, exec)
		if err != nil {
			return Decision{}, err
		}
		if err := applyPlan(t, plan); err != nil {
			return Decision{}, err
		}
		dec.Plan = &plan
		dec.FellBackToDunn = true
		return dec, nil
	}

	if p.gate.fresh(cfg, det.Agg) {
		// Gated epoch: the Agg set is unchanged and the cached profile is
		// young — reassert it for the detection probe's cost alone.
		p.gate.age++
		dec.Friendly = append([]int(nil), p.gate.friendly...)
		dec.Unfriendly = append([]int(nil), p.gate.unfriendly...)
		plan, err := p.plan(t, cfg, dec.Friendly, dec.Unfriendly, det.Agg)
		if err != nil {
			return Decision{}, err
		}
		if err := applyPlan(t, plan); err != nil {
			return Decision{}, err
		}
		dec.Plan = &plan
		dec.BestScore = p.gate.score
		if len(p.gate.disabled) > 0 {
			dec.Disabled = append([]int(nil), p.gate.disabled...)
		}
		if err := setPrefetchers(t, dec.Disabled); err != nil {
			return Decision{}, err
		}
		return dec, nil
	}

	// Sampling interval 2: Agg prefetchers off — friendliness split.
	ipcOn := ipcsOf(probe)
	if err := setPrefetchers(t, det.Agg); err != nil {
		return Decision{}, err
	}
	off := sampleInterval(t, cfg.SamplingInterval)
	dec.SampledCombos++
	ipcOff := ipcsOf(off)
	if err := setPrefetchers(t, nil); err != nil {
		return Decision{}, err
	}
	dec.Friendly, dec.Unfriendly = SplitFriendly(det.Agg, ipcOn, ipcOff, cfg.FriendlyThreshold)

	// Partition per the variant.
	plan, err := p.plan(t, cfg, dec.Friendly, dec.Unfriendly, det.Agg)
	if err != nil {
		return Decision{}, err
	}
	if err := applyPlan(t, plan); err != nil {
		return Decision{}, err
	}
	dec.Plan = &plan

	// Group-level throttling of the unfriendly cores only.
	if len(dec.Unfriendly) > 0 {
		ents := p.ents.entities(dec.Unfriendly, det.PTR, cfg)
		best, score, _, _, sampled, err := comboSearch(t, cfg, ents)
		if err != nil {
			return Decision{}, err
		}
		dec.SampledCombos += sampled
		dec.BestScore = score
		dec.Disabled = disabledFor(ents, best)
		if err := setPrefetchers(t, dec.Disabled); err != nil {
			return Decision{}, err
		}
	}
	p.gate.store(det.Agg, dec.Friendly, dec.Unfriendly, dec.Disabled, dec.BestScore)
	return dec, nil
}

// plan builds the Fig. 6 layout for the variant.
func (p *Coordinated) plan(t Target, cfg Config, friendly, unfriendly, agg []int) (cat.Plan, error) {
	catCfg := t.CATConfig()
	switch p.Variant {
	case VariantA:
		return planPartitions(t, []partitionGroup{{
			cores: agg,
			start: 0,
			ways:  aggWays(cfg, catCfg, len(agg)),
		}})
	case VariantB:
		return planPartitions(t, []partitionGroup{{
			cores: friendly,
			start: 0,
			ways:  aggWays(cfg, catCfg, len(friendly)),
		}})
	case VariantC:
		wF := aggWays(cfg, catCfg, len(friendly))
		wU := aggWays(cfg, catCfg, len(unfriendly))
		groups := []partitionGroup{}
		if len(friendly) > 0 {
			groups = append(groups, partitionGroup{cores: friendly, start: 0, ways: wF})
		}
		if len(unfriendly) > 0 {
			start := 0
			if len(friendly) > 0 {
				start = wF
			}
			if start+wU > catCfg.Ways {
				start = catCfg.Ways - wU
			}
			groups = append(groups, partitionGroup{cores: unfriendly, start: start, ways: wU})
		}
		return planPartitions(t, groups)
	default:
		return cat.Plan{}, fmt.Errorf("cmm: unknown variant %d", p.Variant)
	}
}
