package cmm

import "cmm/internal/pmu"

// Detection is the front end's per-epoch analysis (Fig. 5 of the paper).
type Detection struct {
	// Agg lists the prefetch-aggressive cores, ascending.
	Agg []int
	// PGA, PMR, PTR, LLCPT hold the per-core Table-I metrics the
	// decision used (M-4, M-5, M-3, M-7 as a rate), indexed by core.
	PGA, PMR, PTR, LLCPT []float64
	// IPC, MPKI, StallRatio and MemTraffic complete the per-core feature
	// record of the same probe interval: instructions per cycle, LLC
	// demand misses per kilo-instruction, the STALLS_L2_PENDING share of
	// cycles, and the total LLC→memory request rate. Together with the
	// four Table-I vectors above they form the learned policy's feature
	// schema (internal/learn).
	IPC, MPKI, StallRatio, MemTraffic []float64
	// MeanPGA is the cross-core average PGA candidates must exceed.
	MeanPGA float64
}

// InAgg reports whether core is in the Agg set.
func (d Detection) InAgg(core int) bool {
	for _, c := range d.Agg {
		if c == core {
			return true
		}
	}
	return false
}

// DetectAgg runs the paper's three-step Agg-core identification on one
// window of per-core samples (collected with all prefetchers enabled):
//
//  1. PGA (M-4) above PGAMeanFraction of the all-core average →
//     candidate: the core's access patterns make the L2 prefetchers
//     generate requests.
//  2. L2 PMR (M-5) at or above the threshold → kept: its prefetches
//     actually leave L2 (low prefetch locality).
//  3. L2 PTR (M-3) at or above the threshold → kept: the resulting
//     traffic puts real bandwidth pressure on the LLC.
//  4. LLC PT (M-7, as a rate) at or above the threshold → kept: the
//     prefetches reach memory, not just the LLC (the paper's Sec. III-A
//     note on identifying "cores that issue a large number of prefetch
//     requests to memory").
func DetectAgg(samples []pmu.Sample, ghz float64, cfg Config) Detection {
	n := len(samples)
	d := Detection{
		PGA:        make([]float64, n),
		PMR:        make([]float64, n),
		PTR:        make([]float64, n),
		LLCPT:      make([]float64, n),
		IPC:        make([]float64, n),
		MPKI:       make([]float64, n),
		StallRatio: make([]float64, n),
		MemTraffic: make([]float64, n),
	}
	sum := 0.0
	for i, s := range samples {
		d.PGA[i] = s.M4PGA()
		d.PMR[i] = s.M5L2PMR()
		d.PTR[i] = s.M3L2PTR(ghz)
		seconds := float64(s.Value(pmu.Cycles)) / (ghz * 1e9)
		if seconds > 0 {
			d.LLCPT[i] = float64(s.Value(pmu.L3PrefMiss)) / seconds
		}
		d.IPC[i] = s.IPC()
		d.MPKI[i] = s.MPKI()
		d.StallRatio[i] = s.StallRatio()
		d.MemTraffic[i] = s.MemTrafficRate(ghz)
		sum += d.PGA[i]
	}
	if n > 0 {
		d.MeanPGA = sum / float64(n)
	}
	for i := 0; i < n; i++ {
		if d.PGA[i] > cfg.PGAMeanFraction*d.MeanPGA &&
			d.PMR[i] >= cfg.PMRThreshold &&
			d.PTR[i] >= cfg.PTRThreshold &&
			d.LLCPT[i] >= cfg.LLCPTThreshold {
			d.Agg = append(d.Agg, i)
		}
	}
	return d
}

// SplitFriendly divides Agg cores into prefetch-friendly and -unfriendly
// by the measured IPC speedup from prefetching: cores whose
// ipcOn/ipcOff - 1 meets the threshold keep their prefetchers (friendly);
// the rest are candidates for throttling. Cores with unmeasurable off-IPC
// are treated as unfriendly (throttling them is then harmless).
func SplitFriendly(agg []int, ipcOn, ipcOff []float64, threshold float64) (friendly, unfriendly []int) {
	for _, c := range agg {
		if ipcOff[c] > 0 && ipcOn[c]/ipcOff[c]-1 >= threshold {
			friendly = append(friendly, c)
		} else {
			unfriendly = append(unfriendly, c)
		}
	}
	return friendly, unfriendly
}
