package cmm

import (
	"cmm/internal/pmu"
)

// CoordinatedMBA is an extension back end exploring the direction the
// paper cites via Liu et al. (prefetching × bandwidth partitioning):
// instead of disabling the prefetch-unfriendly cores' prefetchers, it
// keeps all prefetchers on and rate-limits the unfriendly cores' memory
// interface with Intel MBA. The cache side is the Fig. 6(c) layout:
// friendly and unfriendly cores in two disjoint small partitions.
//
// Useful prefetches (even from unfriendly cores) still happen, but their
// bandwidth cost is bounded — a gentler trade than PT's on/off, at the
// price of requiring MBA-capable hardware.
type CoordinatedMBA struct{}

// Name implements Policy.
func (CoordinatedMBA) Name() string { return "CMM-mba" }

// Clone implements Policy; CoordinatedMBA is stateless.
func (p CoordinatedMBA) Clone() Policy { return p }

// mbaCLOSFriendly and mbaCLOSUnfriendly are the classes of service the
// policy uses for the two partitions.
const (
	mbaCLOSFriendly   = 1
	mbaCLOSUnfriendly = 2
)

// Epoch implements Policy.
func (p CoordinatedMBA) Epoch(t Target, cfg Config, exec []pmu.Sample) (Decision, error) {
	if err := setPrefetchers(t, nil); err != nil {
		return Decision{}, err
	}
	probe := sampleInterval(t, cfg.SamplingInterval)
	det := DetectAgg(probe, t.CoreGHz(), cfg)
	dec := Decision{Policy: p.Name(), Detection: det, SampledCombos: 1}
	alloc := allocatorFor(t)

	if len(det.Agg) == 0 {
		plan, err := dunnPlan(t, exec)
		if err != nil {
			return Decision{}, err
		}
		if err := applyPlan(t, plan); err != nil {
			return Decision{}, err
		}
		if err := alloc.SetMBA(mbaCLOSUnfriendly, 0); err != nil {
			return Decision{}, err
		}
		dec.Plan = &plan
		dec.FellBackToDunn = true
		return dec, nil
	}

	// Friendliness split over the second sampling interval.
	ipcOn := ipcsOf(probe)
	if err := setPrefetchers(t, det.Agg); err != nil {
		return Decision{}, err
	}
	off := sampleInterval(t, cfg.SamplingInterval)
	dec.SampledCombos++
	ipcOff := ipcsOf(off)
	if err := setPrefetchers(t, nil); err != nil {
		return Decision{}, err
	}
	dec.Friendly, dec.Unfriendly = SplitFriendly(det.Agg, ipcOn, ipcOff, cfg.FriendlyThreshold)

	// Fig. 6(c) partitions via fixed CLOS ids so the MBA knob targets
	// exactly the unfriendly class.
	plan, err := twoClassPlan(t, cfg, dec.Friendly, dec.Unfriendly)
	if err != nil {
		return Decision{}, err
	}
	if err := applyPlan(t, plan); err != nil {
		return Decision{}, err
	}
	dec.Plan = &plan

	// Bandwidth-throttle the unfriendly class; release it when empty.
	pct := cfg.MBAPercent
	if len(dec.Unfriendly) == 0 {
		pct = 0
	}
	if err := alloc.SetMBA(mbaCLOSUnfriendly, pct); err != nil {
		return Decision{}, err
	}
	dec.MBAThrottled = sortedCopy(dec.Unfriendly)
	dec.MBAPercent = pct
	dec.MBALevels = mbaLevelVector(t.NumCores(), dec.MBAThrottled, pct)
	return dec, nil
}
