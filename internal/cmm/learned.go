package cmm

import (
	"fmt"

	"cmm/internal/learn"
	"cmm/internal/pmu"
)

// DefaultConfidence is the prediction-confidence threshold CMM-L requires
// before it skips the sampling path for an epoch.
const DefaultConfidence = 0.8

// Learned is the CMM-L back end: CMM-a's structure with the profiling
// phase replaced by a trained classifier (internal/learn) wherever the
// model is confident. Each epoch it runs the one all-on detection probe
// every policy needs, then predicts a per-core throttle decision for the
// Agg set from the probe's feature vectors:
//
//   - confident (min per-core confidence >= threshold): apply the
//     VariantA partition over the Agg set and the predicted throttle set
//     directly — 1 sampling interval total, versus CMM-a's 2 + 2^n;
//   - not confident: fall back to CMM-a's full sampling path, reusing
//     the probe already taken. The resulting decision is flagged
//     LearnFallback, so its telemetry event doubles as a fresh labeled
//     training example — the online label-collection loop.
//
// The model is read-only after construction, so Learned is safe to share
// across concurrent runs and Clone can return a shallow copy.
//
// EnableDrift adds a runtime drift monitor on top: predictions are
// checked against the sampling path's ground truth (free on fallback
// epochs, forced on periodic shadow audits) and the policy demotes
// itself to pure CMM-a when agreement drops below the configured floor.
// Drift monitoring is opt-in so the deterministic experiment paths stay
// byte-identical; the serving tier (cmmserve -model-dir) enables it.
type Learned struct {
	model     *learn.Model
	threshold float64
	base      Coordinated
	drift     *driftMonitor
}

// NewLearned builds the CMM-L policy around a validated model. A
// non-positive threshold selects DefaultConfidence.
func NewLearned(m *learn.Model, threshold float64) (*Learned, error) {
	if m == nil {
		return nil, fmt.Errorf("cmm: learned policy needs a model")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("cmm: learned policy: %w", err)
	}
	if threshold <= 0 {
		threshold = DefaultConfidence
	}
	return &Learned{model: m, threshold: threshold, base: Coordinated{Variant: VariantA}}, nil
}

// Name implements Policy.
func (p *Learned) Name() string { return "CMM-L" }

// StoreIdentity distinguishes run-store entries by model: two CMM-L
// instances with different models (or thresholds) make different
// decisions and must never share a cache key (see internal/experiments).
func (p *Learned) StoreIdentity() string {
	return fmt.Sprintf("CMM-L@%s/t%.3f", p.model.Fingerprint(), p.threshold)
}

// Fingerprint exposes the loaded model's fingerprint (for /v1/model).
func (p *Learned) Fingerprint() string { return p.model.Fingerprint() }

// EnableDrift attaches a drift monitor and returns p. Clones share the
// monitor, so drift evidence from every concurrent job counts against
// the one served model and a demotion is service-wide and sticky; a
// newly promoted model gets a fresh Learned and with it a fresh monitor.
func (p *Learned) EnableDrift(cfg DriftConfig) *Learned {
	p.drift = newDriftMonitor(cfg)
	return p
}

// DriftStats snapshots the drift monitor; ok is false when EnableDrift
// was never called.
func (p *Learned) DriftStats() (DriftStats, bool) {
	if p.drift == nil {
		return DriftStats{}, false
	}
	return p.drift.stats(), true
}

// Clone implements Policy. The model is immutable, but the embedded CMM-a
// fallback accumulates gate/scratch state across epochs, so it is reset to
// a fresh instance rather than shallow-copied (two clones must never share
// its cached slices). The drift monitor, when enabled, IS shared by the
// shallow copy: demotion is a property of the served model, not of one
// job's clone (see EnableDrift).
func (p *Learned) Clone() Policy {
	cp := *p
	cp.base = Coordinated{Variant: p.base.Variant}
	return &cp
}

// Epoch implements Policy.
func (p *Learned) Epoch(t Target, cfg Config, exec []pmu.Sample) (Decision, error) {
	// Sampling interval 1: all prefetchers on — detection statistics and
	// the model's features come from the same probe.
	if err := setPrefetchers(t, nil); err != nil {
		return Decision{}, err
	}
	probe := sampleInterval(t, cfg.SamplingInterval)
	det := DetectAgg(probe, t.CoreGHz(), cfg)
	dec := Decision{Policy: p.Name(), Detection: det, SampledCombos: 1}

	if len(det.Agg) == 0 {
		// Fig. 6(d): nothing to predict about — same Dunn fallback as
		// CMM-a. Not counted as a learn fallback: no prediction was due.
		return p.base.epochWithDetection(t, cfg, probe, det, dec, exec)
	}

	if p.drift != nil && p.drift.demotedNow() {
		// Sticky demotion: the model lost the drift monitor's confidence,
		// so every epoch runs the CMM-a sampling path — byte-identical
		// machine programming to CMM-a, no predictions consulted — until a
		// newly promoted model replaces this policy instance.
		return p.base.epochWithDetection(t, cfg, probe, det, dec, exec)
	}

	throttle, minConf := p.predict(det)
	dec.PredConfidence = minConf
	if minConf < p.threshold {
		// Low confidence: run CMM-a's sampling path on the same probe and
		// let the resulting event re-enter the training corpus.
		dec.LearnFallback = true
		return p.finishSampled(t, cfg, probe, det, dec, exec, throttle)
	}

	if p.drift != nil && p.drift.auditDue() {
		// Shadow audit: the model is confident, but this epoch runs the
		// full sampling path anyway and the sampled decision is what gets
		// applied — the prediction is only compared against it. Costs one
		// CMM-a epoch; bounds how stale the drift window can get when the
		// model is never unsure.
		dec.ShadowAudit = true
		return p.finishSampled(t, cfg, probe, det, dec, exec, throttle)
	}

	// Confident: act on the prediction. VariantA's layout depends only on
	// the Agg set, so no friendliness-split interval is needed either.
	dec.Predicted = true
	plan, err := p.base.plan(t, cfg, nil, nil, det.Agg)
	if err != nil {
		return Decision{}, err
	}
	if err := applyPlan(t, plan); err != nil {
		return Decision{}, err
	}
	dec.Plan = &plan
	dec.Disabled = throttle
	if err := setPrefetchers(t, dec.Disabled); err != nil {
		return Decision{}, err
	}
	return dec, nil
}

// finishSampled completes a fallback or shadow-audit epoch: runs CMM-a's
// sampling path on the probe already taken, then feeds the (prediction,
// sampled ground truth) comparison to the drift monitor. The demotion
// transition, when this observation trips it, is flagged on the decision
// so the telemetry stream records the event exactly once.
func (p *Learned) finishSampled(t Target, cfg Config, probe []pmu.Sample, det Detection,
	dec Decision, exec []pmu.Sample, predicted []int) (Decision, error) {
	res, err := p.base.epochWithDetection(t, cfg, probe, det, dec, exec)
	if err != nil || p.drift == nil {
		return res, err
	}
	if p.drift.observe(det.Agg, predicted, res.Disabled) {
		res.LearnDemoted = true
	}
	return res, nil
}

// predict runs the model on every Agg core's feature vector and returns
// the predicted throttle set (ascending, Agg order) and the minimum
// per-core confidence — the epoch is only as certain as its least
// certain core.
func (p *Learned) predict(det Detection) (throttle []int, minConf float64) {
	minConf = 1
	for _, c := range det.Agg {
		x := learn.Vector(det.PGA[c], det.PMR[c], det.PTR[c], det.LLCPT[c],
			det.IPC[c], det.MPKI[c], det.StallRatio[c], det.MemTraffic[c])
		label, conf := p.model.Predict(x)
		if conf < minConf {
			minConf = conf
		}
		if label == 1 {
			throttle = append(throttle, c)
		}
	}
	return throttle, minConf
}
