package cmm

import (
	"fmt"

	"cmm/internal/learn"
	"cmm/internal/pmu"
)

// DefaultConfidence is the prediction-confidence threshold CMM-L requires
// before it skips the sampling path for an epoch.
const DefaultConfidence = 0.8

// Learned is the CMM-L back end: CMM-a's structure with the profiling
// phase replaced by a trained classifier (internal/learn) wherever the
// model is confident. Each epoch it runs the one all-on detection probe
// every policy needs, then predicts a per-core throttle decision for the
// Agg set from the probe's feature vectors:
//
//   - confident (min per-core confidence >= threshold): apply the
//     VariantA partition over the Agg set and the predicted throttle set
//     directly — 1 sampling interval total, versus CMM-a's 2 + 2^n;
//   - not confident: fall back to CMM-a's full sampling path, reusing
//     the probe already taken. The resulting decision is flagged
//     LearnFallback, so its telemetry event doubles as a fresh labeled
//     training example — the online label-collection loop.
//
// The model is read-only after construction, so Learned is safe to share
// across concurrent runs and Clone can return a shallow copy.
type Learned struct {
	model     *learn.Model
	threshold float64
	base      Coordinated
}

// NewLearned builds the CMM-L policy around a validated model. A
// non-positive threshold selects DefaultConfidence.
func NewLearned(m *learn.Model, threshold float64) (*Learned, error) {
	if m == nil {
		return nil, fmt.Errorf("cmm: learned policy needs a model")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("cmm: learned policy: %w", err)
	}
	if threshold <= 0 {
		threshold = DefaultConfidence
	}
	return &Learned{model: m, threshold: threshold, base: Coordinated{Variant: VariantA}}, nil
}

// Name implements Policy.
func (p *Learned) Name() string { return "CMM-L" }

// StoreIdentity distinguishes run-store entries by model: two CMM-L
// instances with different models (or thresholds) make different
// decisions and must never share a cache key (see internal/experiments).
func (p *Learned) StoreIdentity() string {
	return fmt.Sprintf("CMM-L@%s/t%.3f", p.model.Fingerprint(), p.threshold)
}

// Clone implements Policy. The model is immutable, but the embedded CMM-a
// fallback accumulates gate/scratch state across epochs, so it is reset to
// a fresh instance rather than shallow-copied (two clones must never share
// its cached slices).
func (p *Learned) Clone() Policy {
	cp := *p
	cp.base = Coordinated{Variant: p.base.Variant}
	return &cp
}

// Epoch implements Policy.
func (p *Learned) Epoch(t Target, cfg Config, exec []pmu.Sample) (Decision, error) {
	// Sampling interval 1: all prefetchers on — detection statistics and
	// the model's features come from the same probe.
	if err := setPrefetchers(t, nil); err != nil {
		return Decision{}, err
	}
	probe := sampleInterval(t, cfg.SamplingInterval)
	det := DetectAgg(probe, t.CoreGHz(), cfg)
	dec := Decision{Policy: p.Name(), Detection: det, SampledCombos: 1}

	if len(det.Agg) == 0 {
		// Fig. 6(d): nothing to predict about — same Dunn fallback as
		// CMM-a. Not counted as a learn fallback: no prediction was due.
		return p.base.epochWithDetection(t, cfg, probe, det, dec, exec)
	}

	throttle, minConf := p.predict(det)
	dec.PredConfidence = minConf
	if minConf < p.threshold {
		// Low confidence: run CMM-a's sampling path on the same probe and
		// let the resulting event re-enter the training corpus.
		dec.LearnFallback = true
		return p.base.epochWithDetection(t, cfg, probe, det, dec, exec)
	}

	// Confident: act on the prediction. VariantA's layout depends only on
	// the Agg set, so no friendliness-split interval is needed either.
	dec.Predicted = true
	plan, err := p.base.plan(t, cfg, nil, nil, det.Agg)
	if err != nil {
		return Decision{}, err
	}
	if err := applyPlan(t, plan); err != nil {
		return Decision{}, err
	}
	dec.Plan = &plan
	dec.Disabled = throttle
	if err := setPrefetchers(t, dec.Disabled); err != nil {
		return Decision{}, err
	}
	return dec, nil
}

// predict runs the model on every Agg core's feature vector and returns
// the predicted throttle set (ascending, Agg order) and the minimum
// per-core confidence — the epoch is only as certain as its least
// certain core.
func (p *Learned) predict(det Detection) (throttle []int, minConf float64) {
	minConf = 1
	for _, c := range det.Agg {
		x := learn.Vector(det.PGA[c], det.PMR[c], det.PTR[c], det.LLCPT[c],
			det.IPC[c], det.MPKI[c], det.StallRatio[c], det.MemTraffic[c])
		label, conf := p.model.Predict(x)
		if conf < minConf {
			minConf = conf
		}
		if label == 1 {
			throttle = append(throttle, c)
		}
	}
	return throttle, minConf
}
