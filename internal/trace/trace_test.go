package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"cmm/internal/workload"
)

func streamSpec() workload.Spec {
	return workload.Spec{Name: "t.stream", Pattern: workload.Stream,
		WorkingSet: 1 << 20, StepBytes: 8, Streams: 2, GapInstrs: 2, MLP: 4}
}

func TestRoundTrip(t *testing.T) {
	gen, err := workload.New(streamSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var want [][2]uint64
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, "t.stream")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		pc, addr := gen.Next()
		want = append(want, [2]uint64{pc, addr})
		if err := tw.Add(pc, addr); err != nil {
			t.Fatal(err)
		}
	}
	if tw.Count() != 1000 {
		t.Fatalf("count %d", tw.Count())
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	name, pcs, addrs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if name != "t.stream" {
		t.Fatalf("benchmark %q", name)
	}
	if len(pcs) != 1000 {
		t.Fatalf("decoded %d refs", len(pcs))
	}
	for i, w := range want {
		if pcs[i] != w[0] || addrs[i] != w[1] {
			t.Fatalf("ref %d: got (%d,%d), want (%d,%d)", i, pcs[i], addrs[i], w[0], w[1])
		}
	}
}

func TestCompressionOnSequentialStream(t *testing.T) {
	// A single sequential stream has constant pc and +8 address deltas:
	// two one-byte varints per reference.
	spec := streamSpec()
	spec.Streams = 1
	gen, _ := workload.New(spec, 1)
	var buf bytes.Buffer
	if err := Record(&buf, gen, 10_000); err != nil {
		t.Fatal(err)
	}
	perRef := float64(buf.Len()) / 10_000
	if perRef > 2.1 {
		t.Fatalf("sequential trace costs %.2f bytes/ref, want ~2", perRef)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace at all"))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	gen, _ := workload.New(streamSpec(), 1)
	var buf bytes.Buffer
	if err := Record(&buf, gen, 100); err != nil {
		t.Fatal(err)
	}
	// Chop the last byte: the reader must fail cleanly, not loop.
	data := buf.Bytes()[:buf.Len()-1]
	_, _, _, err := ReadAll(bytes.NewReader(data))
	if err == nil || err == io.EOF {
		t.Fatalf("truncated trace: err = %v", err)
	}
}

func TestLongBenchmarkNameRejected(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := NewWriter(&bytes.Buffer{}, string(long)); err == nil {
		t.Fatal("300-char name accepted")
	}
}

func TestReplayerLoopsAndResets(t *testing.T) {
	gen, _ := workload.New(streamSpec(), 1)
	var buf bytes.Buffer
	if err := Record(&buf, gen, 50); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplayer(bytes.NewReader(buf.Bytes()), streamSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 50 {
		t.Fatalf("len %d", rep.Len())
	}
	if rep.Spec().Name != "t.stream" {
		t.Fatalf("spec name %q", rep.Spec().Name)
	}
	var first [50][2]uint64
	for i := 0; i < 50; i++ {
		pc, addr := rep.Next()
		first[i] = [2]uint64{pc, addr}
	}
	// 51st reference wraps to the beginning.
	pc, addr := rep.Next()
	if pc != first[0][0] || addr != first[0][1] {
		t.Fatal("replayer did not wrap")
	}
	rep.Reset()
	pc, addr = rep.Next()
	if pc != first[0][0] || addr != first[0][1] {
		t.Fatal("Reset did not rewind")
	}
}

func TestReplayerEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf, "empty")
	tw.Flush()
	if _, err := NewReplayer(bytes.NewReader(buf.Bytes()), streamSpec()); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestZigZagRoundTrip(t *testing.T) {
	f := func(d int64) bool { return unzigzag(zigzag(d)) == d }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: arbitrary (pc, addr) sequences survive the round trip.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(pcs []uint64, addrs []uint64) bool {
		n := len(pcs)
		if len(addrs) < n {
			n = len(addrs)
		}
		if n == 0 {
			return true
		}
		var buf bytes.Buffer
		tw, err := NewWriter(&buf, "prop")
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if tw.Add(pcs[i], addrs[i]) != nil {
				return false
			}
		}
		if tw.Flush() != nil {
			return false
		}
		_, gotPC, gotAdr, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil || len(gotPC) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if gotPC[i] != pcs[i] || gotAdr[i] != addrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriterAdd(b *testing.B) {
	tw, _ := NewWriter(io.Discard, "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw.Add(uint64(i), uint64(i)*64)
	}
}
