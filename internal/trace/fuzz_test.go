package trace

import (
	"bytes"
	"testing"
)

// FuzzReader throws arbitrary bytes at the trace reader: it must never
// panic or loop, only return data or an error.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace and a few corruptions of it.
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, "seed")
	if err != nil {
		f.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if err := tw.Add(i, i*64); err != nil {
			f.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[1:])
	f.Add([]byte{})
	f.Add([]byte("CMMTRC\x00\x01\x04seedgarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, pcs, addrs, err := ReadAll(bytes.NewReader(data))
		if err == nil && len(pcs) != len(addrs) {
			t.Fatalf("pc/addr length mismatch: %d vs %d", len(pcs), len(addrs))
		}
	})
}

// FuzzRoundTrip checks arbitrary reference pairs survive encode/decode.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1), uint64(64))
	f.Add(^uint64(0), uint64(0), uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, pc1, addr1, pc2, addr2 uint64) {
		var buf bytes.Buffer
		tw, err := NewWriter(&buf, "fz")
		if err != nil {
			t.Fatal(err)
		}
		if err := tw.Add(pc1, addr1); err != nil {
			t.Fatal(err)
		}
		if err := tw.Add(pc2, addr2); err != nil {
			t.Fatal(err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		_, pcs, addrs, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if pcs[0] != pc1 || addrs[0] != addr1 || pcs[1] != pc2 || addrs[1] != addr2 {
			t.Fatalf("round trip lost data: %v %v", pcs, addrs)
		}
	})
}
