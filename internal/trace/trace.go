// Package trace records and replays memory-reference streams. A recorded
// trace decouples workload generation from simulation: traces can be
// inspected offline, diffed across generator versions, or replayed into
// the simulator in place of a live generator (the usual workflow of
// trace-driven cache studies).
//
// The format is a small self-describing binary: a magic header, the
// generating spec's name, then delta-encoded (pc, addr) pairs compressed
// with unsigned varints. Sequential streams compress to ~1–2 bytes per
// reference.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cmm/internal/workload"
)

// magic identifies trace files; the trailing byte is the format version.
var magic = [8]byte{'C', 'M', 'M', 'T', 'R', 'C', 0, 1}

// ErrBadMagic reports a reader input that is not a trace.
var ErrBadMagic = errors.New("trace: bad magic (not a CMM trace)")

// Writer streams references into a trace.
type Writer struct {
	w       *bufio.Writer
	lastPC  uint64
	lastAdr uint64
	n       uint64
	buf     [binary.MaxVarintLen64]byte
}

// NewWriter writes a trace header for the named benchmark and returns a
// Writer for its references.
func NewWriter(w io.Writer, benchmark string) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if len(benchmark) > 255 {
		return nil, fmt.Errorf("trace: benchmark name %q too long", benchmark)
	}
	if err := bw.WriteByte(byte(len(benchmark))); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(benchmark); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// putUvarint writes one varint.
func (t *Writer) putUvarint(v uint64) error {
	n := binary.PutUvarint(t.buf[:], v)
	_, err := t.w.Write(t.buf[:n])
	return err
}

// zigzag encodes a signed delta as unsigned.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag reverses zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Add appends one reference.
func (t *Writer) Add(pc, addr uint64) error {
	if err := t.putUvarint(zigzag(int64(pc - t.lastPC))); err != nil {
		return err
	}
	if err := t.putUvarint(zigzag(int64(addr - t.lastAdr))); err != nil {
		return err
	}
	t.lastPC, t.lastAdr = pc, addr
	t.n++
	return nil
}

// Count returns how many references have been added.
func (t *Writer) Count() uint64 { return t.n }

// Flush finishes the trace. The Writer must not be used afterwards.
func (t *Writer) Flush() error { return t.w.Flush() }

// Record captures n references from a generator into w.
func Record(w io.Writer, gen workload.Generator, n int) error {
	tw, err := NewWriter(w, gen.Spec().Name)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		pc, addr := gen.Next()
		if err := tw.Add(pc, addr); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Reader decodes a trace.
type Reader struct {
	r         *bufio.Reader
	Benchmark string
	lastPC    uint64
	lastAdr   uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	return &Reader{r: br, Benchmark: string(name)}, nil
}

// Next returns the next reference; io.EOF cleanly ends the trace.
func (t *Reader) Next() (pc, addr uint64, err error) {
	dpc, err := binary.ReadUvarint(t.r)
	if err != nil {
		return 0, 0, err
	}
	dadr, err := binary.ReadUvarint(t.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // pc delta without addr delta
		}
		return 0, 0, err
	}
	t.lastPC += uint64(unzigzag(dpc))
	t.lastAdr += uint64(unzigzag(dadr))
	return t.lastPC, t.lastAdr, nil
}

// ReadAll decodes every reference (diagnostics/tests).
func ReadAll(r io.Reader) (benchmark string, pcs, addrs []uint64, err error) {
	tr, err := NewReader(r)
	if err != nil {
		return "", nil, nil, err
	}
	for {
		pc, addr, err := tr.Next()
		if err == io.EOF {
			return tr.Benchmark, pcs, addrs, nil
		}
		if err != nil {
			return tr.Benchmark, pcs, addrs, err
		}
		pcs = append(pcs, pc)
		addrs = append(addrs, addr)
	}
}

// Replayer adapts an in-memory trace to the workload.Generator interface,
// looping back to the start when exhausted (like the paper's restarted
// benchmarks).
type Replayer struct {
	spec  workload.Spec
	pcs   []uint64
	addrs []uint64
	pos   int
}

// NewReplayer loads a full trace from r. The spec provides the timing
// parameters the raw trace does not carry (gap instructions, MLP); its
// Name is overwritten by the trace's benchmark name.
func NewReplayer(r io.Reader, spec workload.Spec) (*Replayer, error) {
	name, pcs, addrs, err := ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(pcs) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	spec.Name = name
	return &Replayer{spec: spec, pcs: pcs, addrs: addrs}, nil
}

// Next implements workload.Generator.
func (t *Replayer) Next() (pc, addr uint64) {
	pc, addr = t.pcs[t.pos], t.addrs[t.pos]
	t.pos++
	if t.pos == len(t.pcs) {
		t.pos = 0
	}
	return pc, addr
}

// Reset implements workload.Generator.
func (t *Replayer) Reset() { t.pos = 0 }

// Spec implements workload.Generator.
func (t *Replayer) Spec() workload.Spec { return t.spec }

// Len returns the trace length in references.
func (t *Replayer) Len() int { return len(t.pcs) }
