package trace_test

import (
	"bytes"
	"fmt"

	"cmm/internal/trace"
	"cmm/internal/workload"
)

// Record a benchmark's reference stream and replay it as a generator.
func ExampleRecord() {
	spec, _ := workload.ByName("462.libquantum")
	gen, _ := workload.New(spec, 1)

	var buf bytes.Buffer
	if err := trace.Record(&buf, gen, 1000); err != nil {
		panic(err)
	}

	rep, err := trace.NewReplayer(bytes.NewReader(buf.Bytes()), spec)
	if err != nil {
		panic(err)
	}
	pc, addr := rep.Next()
	fmt.Printf("benchmark %s, %d refs, first ref pc=%#x addr=%#x\n",
		rep.Spec().Name, rep.Len(), pc, addr)
	// Output:
	// benchmark 462.libquantum, 1000 refs, first ref pc=0x400000 addr=0x0
}
