// Package cmm is the public API of the CMM reproduction: a coordinated
// multi-resource manager that treats hardware prefetchers and the shared
// last-level cache as two allocatable resources (Sun, Shen, Veidenbaum,
// "Combining Prefetch Control and Cache Partitioning to Improve Multicore
// Performance", IPDPS 2019).
//
// The package wraps three layers:
//
//   - a cycle-approximate simulation of the paper's 8-core Xeon E5-2620 v4
//     (private L1/L2 with four Intel-style hardware prefetchers per core,
//     a 20-way inclusive LLC partitioned via CAT way masks, a
//     bandwidth-limited memory model),
//   - the CMM framework itself: PMU-metric front-end detection of
//     prefetch-aggressive cores and the PT / Dunn / Pref-CP / Pref-CP2 /
//     CMM-a/b/c resource-allocation back ends, and
//   - a synthetic SPEC CPU2006-like benchmark suite and the workload-mix
//     generator of the paper's evaluation.
//
// Quick start:
//
//	m, err := cmm.NewMachine([]string{"410.bwaves", "rand_access",
//	    "429.mcf", "453.povray"}, 1)
//	if err != nil { ... }
//	if err := m.UsePolicy("CMM-a"); err != nil { ... }
//	if err := m.RunEpochs(4); err != nil { ... }
//	fmt.Println(m.DecisionSummary(), m.MeasureIPC(2_000_000))
package cmm

import (
	"encoding/json"
	"fmt"
	"sort"

	icmm "cmm/internal/cmm"
	"cmm/internal/mem"
	"cmm/internal/metrics"
	"cmm/internal/mixes"
	"cmm/internal/pmu"
	"cmm/internal/sim"
	"cmm/internal/telemetry"
	"cmm/internal/workload"
)

// Benchmark describes one synthetic benchmark of the suite.
type Benchmark struct {
	// Name is the identifier accepted by NewMachine ("410.bwaves", ...).
	Name string
	// Analogue documents which real program the generator stands in for.
	Analogue string
	// Pattern is the access-pattern shape ("stream", "randburst", ...).
	Pattern string
	// WorkingSetBytes is the touched region size.
	WorkingSetBytes int64
	// PrefetchAggressive, PrefetchFriendly, LLCSensitive are the paper's
	// Sec. IV-B classes.
	PrefetchAggressive, PrefetchFriendly, LLCSensitive bool
}

// Benchmarks lists the suite with its classification.
func Benchmarks() []Benchmark {
	classes := mixes.Classes()
	var out []Benchmark
	for _, s := range workload.Suite() {
		c := classes[s.Name]
		out = append(out, Benchmark{
			Name:               s.Name,
			Analogue:           s.Analogue,
			Pattern:            s.Pattern.String(),
			WorkingSetBytes:    s.WorkingSet,
			PrefetchAggressive: c.PrefAggressive,
			PrefetchFriendly:   c.PrefFriendly,
			LLCSensitive:       c.LLCSensitive,
		})
	}
	return out
}

// Policies lists the available resource-management policies in the paper's
// presentation order: baseline, PT, Dunn, Pref-CP, Pref-CP2, CMM-a/b/c.
func Policies() []string { return icmm.PolicyNames() }

// Categories lists the paper's workload categories.
func Categories() []string {
	out := make([]string, mixes.NumCategories)
	for c := mixes.Category(0); c < mixes.NumCategories; c++ {
		out[c] = c.String()
	}
	return out
}

// MixBenchmarks returns the benchmark names of one of the paper's
// evaluation mixes: category is a Categories() entry, index in [0,10).
func MixBenchmarks(category string, index int, cores int, seed int64) ([]string, error) {
	var cat mixes.Category
	found := false
	for c := mixes.Category(0); c < mixes.NumCategories; c++ {
		if c.String() == category {
			cat, found = c, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cmm: unknown category %q (want one of %v)", category, Categories())
	}
	m, err := mixes.Build(cat, cores, seed+int64(cat)*1000+int64(index))
	if err != nil {
		return nil, err
	}
	return m.BenchmarkNames(), nil
}

// Machine is a simulated multicore running one benchmark per core under a
// selectable CMM policy. Not safe for concurrent use.
type Machine struct {
	sys    *sim.System
	target *icmm.SimTarget
	cfg    icmm.Config
	ctrl   *icmm.Controller
	sink   telemetry.Sink

	// snapBuf and sampleBuf are reused across MeasureIPC windows so
	// repeated measurement loops stay allocation-free.
	snapBuf   []pmu.Snapshot
	sampleBuf []pmu.Sample
}

// Option customizes a Machine.
type Option func(*machineOptions)

type machineOptions struct {
	simCfg sim.Config
	cmmCfg icmm.Config
}

// WithSimConfig overrides the machine model (defaults to the paper's
// platform).
func WithSimConfig(cfg sim.Config) Option {
	return func(o *machineOptions) { o.simCfg = cfg }
}

// WithCMMConfig overrides the controller tunables (epoch lengths,
// detection thresholds, partition factor).
func WithCMMConfig(cfg icmm.Config) Option {
	return func(o *machineOptions) { o.cmmCfg = cfg }
}

// SimDefaults returns the default machine model for use with
// WithSimConfig.
func SimDefaults() sim.Config { return sim.DefaultConfig() }

// CMMDefaults returns the default controller tunables for use with
// WithCMMConfig.
func CMMDefaults() icmm.Config { return icmm.DefaultConfig() }

// NewMachine builds a machine running the named benchmarks, one per core.
func NewMachine(benchmarks []string, seed int64, opts ...Option) (*Machine, error) {
	o := machineOptions{simCfg: sim.DefaultConfig(), cmmCfg: icmm.DefaultConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	specs := make([]workload.Spec, len(benchmarks))
	for i, name := range benchmarks {
		s, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("cmm: unknown benchmark %q (see Benchmarks())", name)
		}
		specs[i] = s
	}
	sys, err := sim.New(o.simCfg, specs, seed)
	if err != nil {
		return nil, err
	}
	m := &Machine{sys: sys, target: icmm.NewSimTarget(sys), cfg: o.cmmCfg}
	if err := m.UsePolicy("baseline"); err != nil {
		return nil, err
	}
	return m, nil
}

// NumCores returns the machine width.
func (m *Machine) NumCores() int { return m.sys.NumCores() }

// BenchmarkNames returns the per-core benchmark names.
func (m *Machine) BenchmarkNames() []string {
	out := make([]string, m.sys.NumCores())
	for i := range out {
		out[i] = m.sys.Core(i).Spec().Name
	}
	return out
}

// Cycles returns the machine's global cycle count.
func (m *Machine) Cycles() uint64 { return m.sys.Now() }

// UsePolicy switches the active policy ("baseline", "PT", "Dunn",
// "Pref-CP", "Pref-CP2", "CMM-a", "CMM-b", "CMM-c"). The controller's
// decision history restarts.
func (m *Machine) UsePolicy(name string) error {
	p, ok := icmm.PolicyByName(name)
	if !ok {
		return fmt.Errorf("cmm: unknown policy %q (want one of %v)", name, Policies())
	}
	ctrl, err := icmm.NewController(m.cfg, m.target, p)
	if err != nil {
		return err
	}
	ctrl.SetSink(m.sink)
	m.ctrl = ctrl
	return nil
}

// SetTelemetrySink streams one telemetry.Event per controller epoch to s,
// surviving UsePolicy switches; pass nil to disable (the default). The
// sink must be safe for concurrent use if the caller shares it across
// machines; every sink in internal/telemetry is.
func (m *Machine) SetTelemetrySink(s telemetry.Sink) {
	m.sink = s
	m.ctrl.SetSink(s)
}

// PolicyName returns the active policy's name.
func (m *Machine) PolicyName() string { return m.ctrl.Policy().Name() }

// RunEpochs executes n execution+profiling epochs under the active policy.
func (m *Machine) RunEpochs(n int) error { return m.ctrl.RunEpochs(n) }

// Run advances the machine by raw cycles without invoking the policy
// (useful for warmup or baseline measurement).
func (m *Machine) Run(cycles uint64) { m.sys.Run(cycles) }

// MeasureIPC runs the machine for the given cycles (policy inactive during
// the window) and returns each core's IPC over that window.
func (m *Machine) MeasureIPC(cycles uint64) []float64 {
	m.snapBuf = m.sys.SnapshotsInto(m.snapBuf)
	m.sys.Run(cycles)
	m.sampleBuf = m.sys.DeltasInto(m.sampleBuf, m.snapBuf)
	return sim.IPCs(m.sampleBuf)
}

// HarmonicMeanIPC is the hm_ipc proxy over a measurement window.
func (m *Machine) HarmonicMeanIPC(cycles uint64) float64 {
	return metrics.HarmonicMeanIPC(m.MeasureIPC(cycles))
}

// BandwidthGBs returns each core's cumulative average memory bandwidth in
// GB/s since construction (demand + prefetch).
func (m *Machine) BandwidthGBs() []float64 {
	out := make([]float64, m.sys.NumCores())
	for i := range out {
		cyc := m.sys.Core(i).PMU().Value(pmu.Cycles)
		out[i] = mem.BandwidthGBs(m.sys.TotalBytes(i), cyc, m.sys.Config().CoreGHz)
	}
	return out
}

// Decision summarizes one epoch's resource-allocation decision.
type Decision struct {
	// Policy is the back end that decided.
	Policy string
	// AggCores are the detected prefetch-aggressive cores.
	AggCores []int
	// Friendly and Unfriendly split AggCores by prefetch usefulness when
	// the policy measured it.
	Friendly, Unfriendly []int
	// ThrottledCores have their prefetchers disabled for the next epoch.
	ThrottledCores []int
	// PartitionMasks maps core → CAT way mask (nil when no partitioning).
	PartitionMasks []uint64
	// FellBackToDunn reports the empty-Agg fallback.
	FellBackToDunn bool
	// MBAThrottled lists cores rate-limited by the CMM-mba extension,
	// with MBAPercent the programmed delay value.
	MBAThrottled []int
	MBAPercent   uint64
	// Summary is a one-line human-readable description.
	Summary string
}

func convertDecision(d icmm.Decision, cores int) Decision {
	out := Decision{
		Policy:         d.Policy,
		AggCores:       append([]int(nil), d.Detection.Agg...),
		Friendly:       append([]int(nil), d.Friendly...),
		Unfriendly:     append([]int(nil), d.Unfriendly...),
		ThrottledCores: append([]int(nil), d.Disabled...),
		FellBackToDunn: d.FellBackToDunn,
		MBAThrottled:   append([]int(nil), d.MBAThrottled...),
		MBAPercent:     d.MBAPercent,
		Summary:        icmm.AggSummary(d),
	}
	sort.Ints(out.AggCores)
	if d.Plan != nil {
		out.PartitionMasks = make([]uint64, cores)
		for core, clos := range d.Plan.ClosByCore {
			out.PartitionMasks[core] = d.Plan.Masks[clos]
		}
	}
	return out
}

// Decisions returns every epoch decision since the last UsePolicy.
func (m *Machine) Decisions() []Decision {
	raw := m.ctrl.Decisions()
	out := make([]Decision, len(raw))
	for i, d := range raw {
		out[i] = convertDecision(d, m.sys.NumCores())
	}
	return out
}

// LastDecision returns the most recent epoch decision.
func (m *Machine) LastDecision() Decision {
	return convertDecision(m.ctrl.LastDecision(), m.sys.NumCores())
}

// DecisionSummary returns the most recent decision as a one-liner.
func (m *Machine) DecisionSummary() string {
	return icmm.AggSummary(m.ctrl.LastDecision())
}

// DecisionsJSON renders the controller's decision history as indented
// JSON — the format cmmd emits for tooling.
func (m *Machine) DecisionsJSON() ([]byte, error) {
	return json.MarshalIndent(m.Decisions(), "", "  ")
}

// ControllerOverhead returns the fraction of machine time the active
// controller has spent profiling (sampling intervals) rather than in
// execution epochs — the analogue of the paper's kernel-module overhead
// measurement.
func (m *Machine) ControllerOverhead() float64 { return m.ctrl.OverheadFraction() }

// Evaluate measures a complete policy-vs-baseline comparison for one set
// of benchmarks: it runs the baseline and the policy on identical machines
// and reports the paper's metrics.
type Evaluation struct {
	// PolicyIPC and BaselineIPC are per-core IPCs over the measurement.
	PolicyIPC, BaselineIPC []float64
	// NormWS is the normalized weighted speedup over baseline.
	NormWS float64
	// WorstCase is the minimum per-core speedup over baseline.
	WorstCase float64
}

// Evaluate runs policy and baseline side by side: warmEpochs controller
// epochs are discarded, measureEpochs are measured.
func Evaluate(benchmarks []string, policy string, seed int64, warmEpochs, measureEpochs int, opts ...Option) (Evaluation, error) {
	run := func(p string) ([]float64, error) {
		m, err := NewMachine(benchmarks, seed, opts...)
		if err != nil {
			return nil, err
		}
		if err := m.UsePolicy(p); err != nil {
			return nil, err
		}
		if err := m.RunEpochs(warmEpochs); err != nil {
			return nil, err
		}
		snaps := m.sys.Snapshots()
		if err := m.RunEpochs(measureEpochs); err != nil {
			return nil, err
		}
		return sim.IPCs(m.sys.Deltas(snaps)), nil
	}
	base, err := run("baseline")
	if err != nil {
		return Evaluation{}, err
	}
	pol, err := run(policy)
	if err != nil {
		return Evaluation{}, err
	}
	ws, err := metrics.NormalizedWS(pol, base)
	if err != nil {
		return Evaluation{}, err
	}
	worst, err := metrics.WorstCaseSpeedup(pol, base)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{PolicyIPC: pol, BaselineIPC: base, NormWS: ws, WorstCase: worst}, nil
}
