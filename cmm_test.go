package cmm

import (
	"strings"
	"testing"
)

func TestBenchmarksListed(t *testing.T) {
	bs := Benchmarks()
	if len(bs) < 20 {
		t.Fatalf("only %d benchmarks", len(bs))
	}
	byName := map[string]Benchmark{}
	for _, b := range bs {
		byName[b.Name] = b
		if b.Analogue == "" || b.Pattern == "" || b.WorkingSetBytes <= 0 {
			t.Errorf("%s: incomplete metadata %+v", b.Name, b)
		}
	}
	if b := byName["410.bwaves"]; !b.PrefetchAggressive || !b.PrefetchFriendly {
		t.Errorf("bwaves classes wrong: %+v", b)
	}
	if b := byName["rand_access"]; !b.PrefetchAggressive || b.PrefetchFriendly {
		t.Errorf("rand_access classes wrong: %+v", b)
	}
	if b := byName["429.mcf"]; !b.LLCSensitive {
		t.Errorf("mcf classes wrong: %+v", b)
	}
}

func TestPoliciesAndCategories(t *testing.T) {
	ps := Policies()
	if len(ps) != 8 || ps[0] != "baseline" || ps[len(ps)-1] != "CMM-c" {
		t.Fatalf("policies = %v", ps)
	}
	cs := Categories()
	if len(cs) != 4 || cs[0] != "Pref Fri" {
		t.Fatalf("categories = %v", cs)
	}
}

func TestMixBenchmarks(t *testing.T) {
	names, err := MixBenchmarks("Pref Agg", 0, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 8 {
		t.Fatalf("mix size %d", len(names))
	}
	if _, err := MixBenchmarks("nope", 0, 8, 1); err == nil {
		t.Fatal("unknown category accepted")
	}
}

func TestNewMachineErrors(t *testing.T) {
	if _, err := NewMachine([]string{"no.such"}, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := NewMachine(nil, 1); err == nil {
		t.Fatal("empty machine accepted")
	}
}

func quadMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := NewMachine([]string{"410.bwaves", "rand_access", "429.mcf", "453.povray"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineBasics(t *testing.T) {
	m := quadMachine(t)
	if m.NumCores() != 4 {
		t.Fatalf("cores %d", m.NumCores())
	}
	names := m.BenchmarkNames()
	if names[0] != "410.bwaves" || names[3] != "453.povray" {
		t.Fatalf("names %v", names)
	}
	if m.PolicyName() != "baseline" {
		t.Fatalf("initial policy %q", m.PolicyName())
	}
	m.Run(200_000)
	if m.Cycles() < 200_000 {
		t.Fatalf("cycles %d", m.Cycles())
	}
	ipcs := m.MeasureIPC(200_000)
	if len(ipcs) != 4 {
		t.Fatalf("ipcs %v", ipcs)
	}
	for i, v := range ipcs {
		if v <= 0 {
			t.Errorf("core %d IPC %g", i, v)
		}
	}
	if hm := m.HarmonicMeanIPC(100_000); hm <= 0 {
		t.Fatalf("hm_ipc %g", hm)
	}
	bws := m.BandwidthGBs()
	if bws[0] <= 0 {
		t.Errorf("bwaves bandwidth %g", bws[0])
	}
	if bws[3] > bws[0] {
		t.Errorf("povray bandwidth %g above bwaves %g", bws[3], bws[0])
	}
}

func TestUsePolicyAndDecisions(t *testing.T) {
	m := quadMachine(t)
	if err := m.UsePolicy("CMM-a"); err != nil {
		t.Fatal(err)
	}
	if err := m.UsePolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if m.PolicyName() != "CMM-a" {
		t.Fatalf("policy %q", m.PolicyName())
	}
	if err := m.RunEpochs(2); err != nil {
		t.Fatal(err)
	}
	ds := m.Decisions()
	if len(ds) != 2 {
		t.Fatalf("%d decisions", len(ds))
	}
	last := m.LastDecision()
	if last.Policy != "CMM-a" {
		t.Fatalf("decision policy %q", last.Policy)
	}
	if last.Summary == "" || m.DecisionSummary() == "" {
		t.Fatal("empty summary")
	}
	// The machine has rand_access aggressive: detection should find at
	// least one Agg core and partition.
	if len(last.AggCores) == 0 && !last.FellBackToDunn {
		t.Errorf("no Agg cores and no fallback: %+v", last)
	}
	if last.PartitionMasks != nil {
		for core, mask := range last.PartitionMasks {
			if mask == 0 {
				t.Errorf("core %d has empty partition mask", core)
			}
		}
	}
}

func TestEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation is slow")
	}
	ev, err := Evaluate(
		[]string{"410.bwaves", "rand_access", "429.mcf", "453.povray"},
		"PT", 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.PolicyIPC) != 4 || len(ev.BaselineIPC) != 4 {
		t.Fatalf("IPC vectors %v %v", ev.PolicyIPC, ev.BaselineIPC)
	}
	if ev.NormWS <= 0.5 || ev.NormWS >= 2 {
		t.Fatalf("NormWS %g implausible", ev.NormWS)
	}
	if ev.WorstCase <= 0 {
		t.Fatalf("WorstCase %g", ev.WorstCase)
	}
	if _, err := Evaluate([]string{"410.bwaves"}, "nope", 1, 0, 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestWithConfigOptions(t *testing.T) {
	simCfg := SimDefaults()
	simCfg.RoundCycles = 10_000
	cmmCfg := CMMDefaults()
	cmmCfg.ExecutionEpoch = 500_000
	cmmCfg.SamplingInterval = 50_000
	m, err := NewMachine([]string{"453.povray", "444.namd", "416.gamess", "445.gobmk"}, 2,
		WithSimConfig(simCfg), WithCMMConfig(cmmCfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.UsePolicy("PT"); err != nil {
		t.Fatal(err)
	}
	if err := m.RunEpochs(1); err != nil {
		t.Fatal(err)
	}
	// Compute-only machine: Agg set must be empty.
	if d := m.LastDecision(); len(d.AggCores) != 0 {
		t.Errorf("compute-only machine detected Agg=%v", d.AggCores)
	}
	if !strings.Contains(m.DecisionSummary(), "empty") {
		t.Errorf("summary %q", m.DecisionSummary())
	}
}

func TestControllerOverheadExposed(t *testing.T) {
	m := quadMachine(t)
	if err := m.UsePolicy("PT"); err != nil {
		t.Fatal(err)
	}
	if err := m.RunEpochs(1); err != nil {
		t.Fatal(err)
	}
	f := m.ControllerOverhead()
	if f <= 0 || f >= 1 {
		t.Fatalf("overhead %g", f)
	}
}

func TestDecisionsJSON(t *testing.T) {
	m := quadMachine(t)
	if err := m.UsePolicy("CMM-a"); err != nil {
		t.Fatal(err)
	}
	if err := m.RunEpochs(1); err != nil {
		t.Fatal(err)
	}
	data, err := m.DecisionsJSON()
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{`"Policy": "CMM-a"`, `"AggCores"`, `"Summary"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
}
