// Phases: the controller re-detecting across program phases.
//
// The paper's framework re-runs detection every execution epoch precisely
// because applications move through phases ("In some program phases, the
// Agg set may not be empty"). Here core 0 alternates between a streaming
// phase (prefetch aggressive and friendly) and a random phase (quiet), and
// the per-epoch decision trace shows the Agg set following it.
package main

import (
	"fmt"
	"log"
	"os"

	"cmm"
	icmm "cmm/internal/cmm"
	"cmm/internal/sim"
	"cmm/internal/telemetry"
	"cmm/internal/workload"
)

func main() {
	phased := workload.Spec{
		Name: "phased.app", Pattern: workload.Phased,
		WorkingSet: 64 << 20, StepBytes: 16, PhaseRefs: 220_000,
		MLP: 5, GapInstrs: 2,
	}
	quiet, _ := workload.ByName("453.povray")
	sensitive, _ := workload.ByName("429.mcf")

	sys, err := sim.New(sim.DefaultConfig(),
		[]workload.Spec{phased, sensitive, quiet, quiet}, 3)
	if err != nil {
		log.Fatal(err)
	}
	cfg := icmm.DefaultConfig()
	cfg.ExecutionEpoch = 1_200_000
	cfg.SamplingInterval = 100_000
	ctrl, err := icmm.NewController(cfg, icmm.NewSimTarget(sys), &icmm.Coordinated{Variant: icmm.VariantA})
	if err != nil {
		log.Fatal(err)
	}
	// Stream every epoch decision as JSONL while counting aggregates —
	// the same sinks cmmd wires behind -telemetry and -listen.
	var counters telemetry.Counters
	jsonl := telemetry.NewJSONLSink(os.Stderr)
	ctrl.SetSink(telemetry.Multi(&counters, jsonl))

	fmt.Println("core 0 alternates streaming/random phases; policy:", ctrl.Policy().Name())
	fmt.Println("available policies:", cmm.Policies())
	for e := 1; e <= 10; e++ {
		if err := ctrl.RunEpochs(1); err != nil {
			log.Fatal(err)
		}
		d := ctrl.LastDecision()
		phase := "random  (quiet)"
		if d.Detection.InAgg(0) {
			phase = "stream  (aggressive)"
		}
		fmt.Printf("epoch %2d: core 0 phase %-22s %s\n", e, phase, icmm.AggSummary(d))
	}
	fmt.Printf("controller profiling overhead: %.1f%%\n", ctrl.OverheadFraction()*100)
	if err := jsonl.Flush(); err != nil {
		log.Fatal(err)
	}
	snap := counters.Snapshot()
	fmt.Printf("telemetry: %d epochs, %d with detections, %d throttle flips\n",
		snap["epochs_total"], snap["detections_total"], snap["throttle_flips_total"])
}
