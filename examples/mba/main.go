// MBA: the bandwidth-throttling extension. Instead of switching the
// prefetch-unfriendly cores' prefetchers off (CMM-a), CMM-mba keeps every
// prefetcher running and rate-limits the unfriendly cores' memory
// interface with Intel Memory Bandwidth Allocation — the direction the
// paper points to via Liu et al.'s prefetching/bandwidth-partitioning
// study.
package main

import (
	"fmt"
	"log"

	"cmm"
)

func main() {
	names := []string{
		"410.bwaves", "462.libquantum", // prefetch friendly
		"rand_access", "rand_access.B", // prefetch unfriendly
		"429.mcf", "450.soplex", // LLC sensitive
		"453.povray", "444.namd", // compute bound
	}
	fmt.Println("mix:", names)

	for _, policy := range []string{"CMM-a", "CMM-mba"} {
		m, err := cmm.NewMachine(names, 11)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.UsePolicy(policy); err != nil {
			log.Fatal(err)
		}
		if err := m.RunEpochs(3); err != nil {
			log.Fatal(err)
		}
		d := m.LastDecision()
		fmt.Printf("\n--- %s ---\n", policy)
		fmt.Println("decision:", d.Summary)
		if len(d.MBAThrottled) > 0 {
			fmt.Printf("MBA: cores %v throttled to %d%% delay\n", d.MBAThrottled, d.MBAPercent)
		}
		fmt.Printf("bandwidth GB/s:")
		for _, bw := range m.BandwidthGBs() {
			fmt.Printf(" %.2f", bw)
		}
		fmt.Println()
	}

	fmt.Printf("\n%-8s %12s %12s\n", "policy", "norm WS", "worst-case")
	for _, policy := range []string{"CMM-a", "CMM-mba"} {
		ev, err := cmm.Evaluate(names, policy, 11, 1, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.3f %12.3f\n", policy, ev.NormWS, ev.WorstCase)
	}
}
