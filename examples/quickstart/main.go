// Quickstart: build an 8-core machine running one of the paper's
// "Pref Agg" workload mixes, manage it with the coordinated CMM-a policy,
// and report the resulting performance against the unmanaged baseline.
package main

import (
	"fmt"
	"log"

	"cmm"
)

func main() {
	// Draw the first Pref Agg mix of the paper's evaluation: two
	// prefetch-friendly streamers, two Rand Access aggressors, and four
	// non-aggressive programs (at least two of them LLC-sensitive).
	names, err := cmm.MixBenchmarks("Pref Agg", 0, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload mix:", names)

	// Evaluate CMM-a against the baseline (all prefetchers on, no
	// partitioning): one warmup epoch, three measured epochs.
	ev, err := cmm.Evaluate(names, "CMM-a", 1, 1, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-16s %10s %10s %9s\n", "benchmark", "baseline", "CMM-a", "speedup")
	for i, n := range names {
		fmt.Printf("%-16s %10.3f %10.3f %8.1f%%\n",
			n, ev.BaselineIPC[i], ev.PolicyIPC[i],
			(ev.PolicyIPC[i]/ev.BaselineIPC[i]-1)*100)
	}
	fmt.Printf("\nnormalized weighted speedup: %.3f\n", ev.NormWS)
	fmt.Printf("worst-case per-app speedup:  %.3f\n", ev.WorstCase)

	// Peek at what the controller actually decided.
	m, err := cmm.NewMachine(names, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.UsePolicy("CMM-a"); err != nil {
		log.Fatal(err)
	}
	if err := m.RunEpochs(2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncontroller decision:", m.DecisionSummary())
}
