// Partitioning: compare the prior-art Dunn clustering policy with the
// paper's prefetch-aware Pref-CP on a mix where streaming prefetchers
// trample LLC-sensitive programs.
//
// Dunn clusters cores by their L2-pending stall cycles and hands out
// nested way masks — blind to the fact that the streamers' performance
// comes from prefetching, not cache space. Pref-CP instead detects the
// prefetch-aggressive cores and confines them to a small overlapping
// partition (1.5 ways per aggressive core), leaving the rest of the LLC
// to the programs that actually reuse it.
package main

import (
	"fmt"
	"log"

	"cmm"
)

func main() {
	names := []string{
		"410.bwaves", "462.libquantum", "437.leslie3d", "470.lbm",
		"429.mcf", "483.xalancbmk", "450.soplex", "453.povray",
	}
	fmt.Println("mix:", names)

	for _, policy := range []string{"Dunn", "Pref-CP"} {
		ev, err := cmm.Evaluate(names, policy, 3, 1, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s ---\n", policy)
		fmt.Printf("%-16s %10s %10s %9s\n", "benchmark", "baseline", policy, "speedup")
		for i, n := range names {
			fmt.Printf("%-16s %10.3f %10.3f %8.1f%%\n",
				n, ev.BaselineIPC[i], ev.PolicyIPC[i],
				(ev.PolicyIPC[i]/ev.BaselineIPC[i]-1)*100)
		}
		fmt.Printf("normalized WS: %.3f   worst-case: %.3f\n", ev.NormWS, ev.WorstCase)
	}

	// Show the masks each policy actually programs.
	for _, policy := range []string{"Dunn", "Pref-CP"} {
		m, err := cmm.NewMachine(names, 3)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.UsePolicy(policy); err != nil {
			log.Fatal(err)
		}
		if err := m.RunEpochs(2); err != nil {
			log.Fatal(err)
		}
		d := m.LastDecision()
		fmt.Printf("\n%s partitions:", policy)
		for core, mask := range d.PartitionMasks {
			fmt.Printf(" c%d=%#x", core, mask)
		}
		fmt.Println()
	}
}
