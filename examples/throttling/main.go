// Throttling: watch the PT back end work on a prefetch-unfriendly mix.
//
// Four Rand Access instances (the paper's microbenchmark: random accesses
// that keep triggering useless prefetch streams) run next to four quiet
// programs. PT samples on/off combinations of the aggressive cores'
// prefetchers each profiling epoch and keeps the combination with the best
// harmonic-mean IPC — which here means turning the useless prefetchers
// off.
package main

import (
	"fmt"
	"log"

	"cmm"
)

func main() {
	names := []string{
		"rand_access", "rand_access.B", "rand_access.C", "rand_access.D",
		"429.mcf", "471.omnetpp", "453.povray", "444.namd",
	}
	m, err := cmm.NewMachine(names, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mix:", m.BenchmarkNames())

	// Baseline IPC for comparison.
	m.Run(2_000_000) // warm caches
	base := m.MeasureIPC(2_000_000)

	if err := m.UsePolicy("PT"); err != nil {
		log.Fatal(err)
	}
	for e := 1; e <= 4; e++ {
		if err := m.RunEpochs(1); err != nil {
			log.Fatal(err)
		}
		d := m.LastDecision()
		fmt.Printf("epoch %d: %s\n", e, d.Summary)
		fmt.Printf("         agg=%v throttled=%v\n", d.AggCores, d.ThrottledCores)
	}

	after := m.MeasureIPC(2_000_000)
	fmt.Printf("\n%-16s %10s %10s %9s\n", "benchmark", "before", "after", "change")
	for i, n := range names {
		fmt.Printf("%-16s %10.3f %10.3f %8.1f%%\n", n, base[i], after[i], (after[i]/base[i]-1)*100)
	}
	fmt.Printf("\nmemory bandwidth per core (GB/s): ")
	for _, bw := range m.BandwidthGBs() {
		fmt.Printf("%.2f ", bw)
	}
	fmt.Println()
}
