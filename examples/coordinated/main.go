// Coordinated: the paper's contribution proper — run CMM-a, CMM-b and
// CMM-c head-to-head on a Pref Agg mix and trace their per-epoch
// decisions.
//
// All three first detect the prefetch-aggressive cores and split them into
// prefetch-friendly (keep prefetchers, they barely need LLC) and
// prefetch-unfriendly (throttle candidates). They differ in the Fig. 6
// partition layout:
//
//	CMM-a: whole Agg set in one small partition
//	CMM-b: only the friendly cores partitioned; unfriendly roam the LLC
//	CMM-c: friendly and unfriendly in two disjoint small partitions
package main

import (
	"fmt"
	"log"

	"cmm"
)

func main() {
	names, err := cmm.MixBenchmarks("Pref Agg", 1, 8, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mix:", names)

	for _, policy := range []string{"CMM-a", "CMM-b", "CMM-c"} {
		m, err := cmm.NewMachine(names, 5)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.UsePolicy(policy); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s ---\n", policy)
		for e := 1; e <= 3; e++ {
			if err := m.RunEpochs(1); err != nil {
				log.Fatal(err)
			}
			d := m.LastDecision()
			fmt.Printf("epoch %d: %s\n", e, d.Summary)
			if d.PartitionMasks != nil {
				fmt.Print("         masks:")
				for core, mask := range d.PartitionMasks {
					fmt.Printf(" c%d=%#x", core, mask)
				}
				fmt.Println()
			}
		}
		fmt.Printf("hm_ipc over 2M cycles: %.4f\n", m.HarmonicMeanIPC(2_000_000))
	}

	// Side-by-side evaluation against the baseline.
	fmt.Printf("\n%-8s %12s %12s\n", "policy", "norm WS", "worst-case")
	for _, policy := range []string{"CMM-a", "CMM-b", "CMM-c"} {
		ev, err := cmm.Evaluate(names, policy, 5, 1, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.3f %12.3f\n", policy, ev.NormWS, ev.WorstCase)
	}
}
