#!/usr/bin/env bash
# Two-process fault-tolerance smoke test.
#
# Phase 1 (kill takeover): starts two cmmserve workers on one shared
# -store directory, submits a comparison job, SIGKILLs whichever worker
# is executing it mid-run, and requires the survivor to reap the dead
# worker's lease and finish the job. The shared content-addressed run
# store makes the takeover cheap: every simulation the dead worker
# completed is served from cache during the re-run.
#
# Phase 2 (cross-node cancel): restarts the killed worker, submits a
# second job, and DELETEs it through the worker that does NOT hold the
# lease. The durable cancel flag must reach the leaseholder via its
# heartbeat and drive the job to the terminal canceled state.
#
# Usage: scripts/two_worker_smoke.sh
# Exits 0 on success; prints a FAIL line and exits 1 otherwise.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
STORE="$WORK/store"
BIN="$WORK/cmmserve"
PORT_A=18290
PORT_B=18291
A_URL="http://127.0.0.1:$PORT_A"
B_URL="http://127.0.0.1:$PORT_B"

A_PID=""
B_PID=""
cleanup() {
    [ -n "$A_PID" ] && kill -9 "$A_PID" 2>/dev/null || true
    [ -n "$B_PID" ] && kill -9 "$B_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- worker A log ---" >&2; cat "$WORK/a.log" >&2 || true
    echo "--- worker B log ---" >&2; cat "$WORK/b.log" >&2 || true
    exit 1
}

# jsonfield FILE KEY -> first scalar value of "KEY" in pretty JSON.
jsonfield() {
    grep -o "\"$2\": *\"[^\"]*\"" "$1" | head -1 | sed 's/.*: *"//; s/"$//'
}

echo "building cmmserve"
go build -o "$BIN" ./cmd/cmmserve

echo "starting workers a and b on shared store $STORE"
"$BIN" -listen "127.0.0.1:$PORT_A" -store "$STORE" -worker-id smoke-a \
    -lease-ttl 2s -scan 300ms >"$WORK/a.log" 2>&1 &
A_PID=$!
"$BIN" -listen "127.0.0.1:$PORT_B" -store "$STORE" -worker-id smoke-b \
    -lease-ttl 2s -scan 300ms >"$WORK/b.log" 2>&1 &
B_PID=$!

for i in $(seq 1 50); do
    ok_a=$(curl -sf "$A_URL/healthz" 2>/dev/null || true)
    ok_b=$(curl -sf "$B_URL/healthz" 2>/dev/null || true)
    [ "$ok_a" = ok ] && [ "$ok_b" = ok ] && break
    [ "$i" = 50 ] && fail "workers did not become healthy"
    sleep 0.2
done

echo "submitting job to worker a"
curl -s "$A_URL/v1/jobs" \
    -d '{"kind":"comparison","preset":"quick","seeds":[1],"mixes_per_category":2}' \
    >"$WORK/submit.json"
JOB=$(jsonfield "$WORK/submit.json" id)
[ -n "$JOB" ] || fail "no job id in $(cat "$WORK/submit.json")"
echo "job $JOB accepted"

# Wait until one worker is executing it and has made real progress, so
# the kill lands mid-job, then identify the runner by the status' worker
# field.
RUNNER=""
for i in $(seq 1 100); do
    curl -s "$A_URL/v1/jobs/$JOB" >"$WORK/status.json" || true
    state=$(jsonfield "$WORK/status.json" state)
    done_runs=$(grep -o '"done": *[0-9]*' "$WORK/status.json" | head -1 | grep -o '[0-9]*' || echo 0)
    if [ "$state" = running ] && [ "${done_runs:-0}" -ge 3 ]; then
        RUNNER=$(jsonfield "$WORK/status.json" worker)
        break
    fi
    [ "$state" = done ] && fail "job finished before the kill window (too fast for this host)"
    sleep 0.3
done
[ -n "$RUNNER" ] || fail "job never reached running with progress: $(cat "$WORK/status.json")"

if [ "$RUNNER" = smoke-a ]; then
    VICTIM_PID=$A_PID; VICTIM=a; SURVIVOR_URL=$B_URL; A_PID=""
else
    VICTIM_PID=$B_PID; VICTIM=b; SURVIVOR_URL=$A_URL; B_PID=""
fi
echo "job running on worker $VICTIM ($done_runs runs done); SIGKILL pid $VICTIM_PID"
kill -9 "$VICTIM_PID"

echo "waiting for the survivor to reap the lease and finish the job"
TAKEOVER=""
for i in $(seq 1 400); do
    curl -s "$SURVIVOR_URL/v1/jobs/$JOB" >"$WORK/status.json" || true
    state=$(jsonfield "$WORK/status.json" state)
    if [ "$state" = done ]; then
        attempt=$(grep -o '"attempt": *[0-9]*' "$WORK/status.json" | head -1 | grep -o '[0-9]*' || echo "")
        worker=$(jsonfield "$WORK/status.json" worker)
        echo "job done on worker $worker (attempt ${attempt:-?})"
        curl -sf "$SURVIVOR_URL/v1/jobs/$JOB/result" >"$WORK/result.json" \
            || fail "survivor served no result"
        grep -q '"results"' "$WORK/result.json" || fail "result payload looks wrong"
        echo "PASS (phase 1): killed worker $VICTIM mid-job; survivor finished it and serves the result"
        TAKEOVER=yes
        break
    fi
    [ "$state" = failed ] && fail "job quarantined instead of finishing: $(cat "$WORK/status.json")"
    sleep 0.5
done
[ -n "$TAKEOVER" ] || fail "survivor never finished the job: $(cat "$WORK/status.json")"

# ---- Phase 2: cross-node cancel -------------------------------------

echo "restarting worker $VICTIM for the cross-node cancel phase"
if [ "$VICTIM" = a ]; then
    "$BIN" -listen "127.0.0.1:$PORT_A" -store "$STORE" -worker-id smoke-a \
        -lease-ttl 2s -scan 300ms >>"$WORK/a.log" 2>&1 &
    A_PID=$!
else
    "$BIN" -listen "127.0.0.1:$PORT_B" -store "$STORE" -worker-id smoke-b \
        -lease-ttl 2s -scan 300ms >>"$WORK/b.log" 2>&1 &
    B_PID=$!
fi
for i in $(seq 1 50); do
    ok_a=$(curl -sf "$A_URL/healthz" 2>/dev/null || true)
    ok_b=$(curl -sf "$B_URL/healthz" 2>/dev/null || true)
    [ "$ok_a" = ok ] && [ "$ok_b" = ok ] && break
    [ "$i" = 50 ] && fail "restarted worker did not become healthy"
    sleep 0.2
done

echo "submitting cancel-target job to worker a"
curl -s "$A_URL/v1/jobs" \
    -d '{"kind":"comparison","preset":"quick","seeds":[2,3],"mixes_per_category":4}' \
    >"$WORK/submit2.json"
JOB2=$(jsonfield "$WORK/submit2.json" id)
[ -n "$JOB2" ] || fail "no job id in $(cat "$WORK/submit2.json")"

RUNNER2=""
for i in $(seq 1 100); do
    curl -s "$A_URL/v1/jobs/$JOB2" >"$WORK/status2.json" || true
    state=$(jsonfield "$WORK/status2.json" state)
    if [ "$state" = running ]; then
        RUNNER2=$(jsonfield "$WORK/status2.json" worker)
        [ -n "$RUNNER2" ] && break
    fi
    [ "$state" = done ] && fail "cancel-target job finished before the DELETE (too fast for this host)"
    sleep 0.2
done
[ -n "$RUNNER2" ] || fail "cancel-target job never reached running: $(cat "$WORK/status2.json")"

# DELETE through the worker that does NOT hold the lease: only the
# durable cancel flag can reach the leaseholder.
if [ "$RUNNER2" = smoke-a ]; then PEER_URL=$B_URL; else PEER_URL=$A_URL; fi
echo "job $JOB2 running on $RUNNER2; DELETE via the peer"
curl -s -X DELETE "$PEER_URL/v1/jobs/$JOB2" >/dev/null || fail "peer DELETE failed"

echo "waiting for the leaseholder to observe the cancel flag"
for i in $(seq 1 60); do
    curl -s "$PEER_URL/v1/jobs/$JOB2" >"$WORK/status2.json" || true
    state=$(jsonfield "$WORK/status2.json" state)
    if [ "$state" = canceled ]; then
        grep -q 'cancelled by client' "$WORK/status2.json" \
            || fail "canceled without the client's reason: $(cat "$WORK/status2.json")"
        echo "PASS (phase 2): peer DELETE drove the remote job to terminal canceled"
        echo "PASS: both phases"
        exit 0
    fi
    [ "$state" = done ] && fail "job completed despite the cross-node cancel"
    sleep 0.3
done
fail "cross-node cancel never became terminal: $(cat "$WORK/status2.json")"
