#!/usr/bin/env bash
# Two-process fault-tolerance smoke test.
#
# Phase 1 (kill takeover): starts two cmmserve workers on one shared
# -store directory, submits a comparison job, SIGKILLs whichever worker
# is executing it mid-run, and requires the survivor to reap the dead
# worker's lease and finish the job. The shared content-addressed run
# store makes the takeover cheap: every simulation the dead worker
# completed is served from cache during the re-run.
#
# Phase 2 (cross-node cancel): restarts the killed worker, submits a
# second job, and DELETEs it through the worker that does NOT hold the
# lease. The durable cancel flag must reach the leaseholder via its
# heartbeat and drive the job to the terminal canceled state.
#
# Phase 3 (model hot reload): trains and promotes a CMM-L model into the
# registry both workers watch; both must hot-swap to it and serve a
# CMM-L job. A corrupt promotion (torn envelope + flipped pointer) must
# be rejected — old model keeps serving, reload-error counters bump —
# and a clean second promotion must swap both workers again.
#
# Usage: scripts/two_worker_smoke.sh
# Exits 0 on success; prints a FAIL line and exits 1 otherwise.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
STORE="$WORK/store"
MODELS="$WORK/models"
BIN="$WORK/cmmserve"
TRAINBIN="$WORK/cmmtrain"
PORT_A=18290
PORT_B=18291
A_URL="http://127.0.0.1:$PORT_A"
B_URL="http://127.0.0.1:$PORT_B"

A_PID=""
B_PID=""
cleanup() {
    [ -n "$A_PID" ] && kill -9 "$A_PID" 2>/dev/null || true
    [ -n "$B_PID" ] && kill -9 "$B_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- worker A log ---" >&2; cat "$WORK/a.log" >&2 || true
    echo "--- worker B log ---" >&2; cat "$WORK/b.log" >&2 || true
    exit 1
}

# jsonfield FILE KEY -> first scalar value of "KEY" in pretty JSON.
jsonfield() {
    grep -o "\"$2\": *\"[^\"]*\"" "$1" | head -1 | sed 's/.*: *"//; s/"$//'
}

echo "building cmmserve and cmmtrain"
go build -o "$BIN" ./cmd/cmmserve
go build -o "$TRAINBIN" ./cmd/cmmtrain

echo "starting workers a and b on shared store $STORE"
"$BIN" -listen "127.0.0.1:$PORT_A" -store "$STORE" -worker-id smoke-a \
    -model-dir "$MODELS" -model-poll 300ms \
    -lease-ttl 2s -scan 300ms >"$WORK/a.log" 2>&1 &
A_PID=$!
"$BIN" -listen "127.0.0.1:$PORT_B" -store "$STORE" -worker-id smoke-b \
    -model-dir "$MODELS" -model-poll 300ms \
    -lease-ttl 2s -scan 300ms >"$WORK/b.log" 2>&1 &
B_PID=$!

for i in $(seq 1 50); do
    ok_a=$(curl -sf "$A_URL/healthz" 2>/dev/null || true)
    ok_b=$(curl -sf "$B_URL/healthz" 2>/dev/null || true)
    [ "$ok_a" = ok ] && [ "$ok_b" = ok ] && break
    [ "$i" = 50 ] && fail "workers did not become healthy"
    sleep 0.2
done

echo "submitting job to worker a"
curl -s "$A_URL/v1/jobs" \
    -d '{"kind":"comparison","preset":"quick","seeds":[1],"mixes_per_category":2}' \
    >"$WORK/submit.json"
JOB=$(jsonfield "$WORK/submit.json" id)
[ -n "$JOB" ] || fail "no job id in $(cat "$WORK/submit.json")"
echo "job $JOB accepted"

# Wait until one worker is executing it and has made real progress, so
# the kill lands mid-job, then identify the runner by the status' worker
# field.
RUNNER=""
for i in $(seq 1 100); do
    curl -s "$A_URL/v1/jobs/$JOB" >"$WORK/status.json" || true
    state=$(jsonfield "$WORK/status.json" state)
    done_runs=$(grep -o '"done": *[0-9]*' "$WORK/status.json" | head -1 | grep -o '[0-9]*' || echo 0)
    if [ "$state" = running ] && [ "${done_runs:-0}" -ge 3 ]; then
        RUNNER=$(jsonfield "$WORK/status.json" worker)
        break
    fi
    [ "$state" = done ] && fail "job finished before the kill window (too fast for this host)"
    sleep 0.3
done
[ -n "$RUNNER" ] || fail "job never reached running with progress: $(cat "$WORK/status.json")"

if [ "$RUNNER" = smoke-a ]; then
    VICTIM_PID=$A_PID; VICTIM=a; SURVIVOR_URL=$B_URL; A_PID=""
else
    VICTIM_PID=$B_PID; VICTIM=b; SURVIVOR_URL=$A_URL; B_PID=""
fi
echo "job running on worker $VICTIM ($done_runs runs done); SIGKILL pid $VICTIM_PID"
kill -9 "$VICTIM_PID"

echo "waiting for the survivor to reap the lease and finish the job"
TAKEOVER=""
for i in $(seq 1 400); do
    curl -s "$SURVIVOR_URL/v1/jobs/$JOB" >"$WORK/status.json" || true
    state=$(jsonfield "$WORK/status.json" state)
    if [ "$state" = done ]; then
        attempt=$(grep -o '"attempt": *[0-9]*' "$WORK/status.json" | head -1 | grep -o '[0-9]*' || echo "")
        worker=$(jsonfield "$WORK/status.json" worker)
        echo "job done on worker $worker (attempt ${attempt:-?})"
        curl -sf "$SURVIVOR_URL/v1/jobs/$JOB/result" >"$WORK/result.json" \
            || fail "survivor served no result"
        grep -q '"results"' "$WORK/result.json" || fail "result payload looks wrong"
        echo "PASS (phase 1): killed worker $VICTIM mid-job; survivor finished it and serves the result"
        TAKEOVER=yes
        break
    fi
    [ "$state" = failed ] && fail "job quarantined instead of finishing: $(cat "$WORK/status.json")"
    sleep 0.5
done
[ -n "$TAKEOVER" ] || fail "survivor never finished the job: $(cat "$WORK/status.json")"

# ---- Phase 2: cross-node cancel -------------------------------------

echo "restarting worker $VICTIM for the cross-node cancel phase"
if [ "$VICTIM" = a ]; then
    "$BIN" -listen "127.0.0.1:$PORT_A" -store "$STORE" -worker-id smoke-a \
        -model-dir "$MODELS" -model-poll 300ms \
        -lease-ttl 2s -scan 300ms >>"$WORK/a.log" 2>&1 &
    A_PID=$!
else
    "$BIN" -listen "127.0.0.1:$PORT_B" -store "$STORE" -worker-id smoke-b \
        -model-dir "$MODELS" -model-poll 300ms \
        -lease-ttl 2s -scan 300ms >>"$WORK/b.log" 2>&1 &
    B_PID=$!
fi
for i in $(seq 1 50); do
    ok_a=$(curl -sf "$A_URL/healthz" 2>/dev/null || true)
    ok_b=$(curl -sf "$B_URL/healthz" 2>/dev/null || true)
    [ "$ok_a" = ok ] && [ "$ok_b" = ok ] && break
    [ "$i" = 50 ] && fail "restarted worker did not become healthy"
    sleep 0.2
done

echo "submitting cancel-target job to worker a"
curl -s "$A_URL/v1/jobs" \
    -d '{"kind":"comparison","preset":"quick","seeds":[2,3],"mixes_per_category":4}' \
    >"$WORK/submit2.json"
JOB2=$(jsonfield "$WORK/submit2.json" id)
[ -n "$JOB2" ] || fail "no job id in $(cat "$WORK/submit2.json")"

RUNNER2=""
for i in $(seq 1 100); do
    curl -s "$A_URL/v1/jobs/$JOB2" >"$WORK/status2.json" || true
    state=$(jsonfield "$WORK/status2.json" state)
    if [ "$state" = running ]; then
        RUNNER2=$(jsonfield "$WORK/status2.json" worker)
        [ -n "$RUNNER2" ] && break
    fi
    [ "$state" = done ] && fail "cancel-target job finished before the DELETE (too fast for this host)"
    sleep 0.2
done
[ -n "$RUNNER2" ] || fail "cancel-target job never reached running: $(cat "$WORK/status2.json")"

# DELETE through the worker that does NOT hold the lease: only the
# durable cancel flag can reach the leaseholder.
if [ "$RUNNER2" = smoke-a ]; then PEER_URL=$B_URL; else PEER_URL=$A_URL; fi
echo "job $JOB2 running on $RUNNER2; DELETE via the peer"
curl -s -X DELETE "$PEER_URL/v1/jobs/$JOB2" >/dev/null || fail "peer DELETE failed"

echo "waiting for the leaseholder to observe the cancel flag"
CANCELED=""
for i in $(seq 1 60); do
    curl -s "$PEER_URL/v1/jobs/$JOB2" >"$WORK/status2.json" || true
    state=$(jsonfield "$WORK/status2.json" state)
    if [ "$state" = canceled ]; then
        grep -q 'cancelled by client' "$WORK/status2.json" \
            || fail "canceled without the client's reason: $(cat "$WORK/status2.json")"
        echo "PASS (phase 2): peer DELETE drove the remote job to terminal canceled"
        CANCELED=yes
        break
    fi
    [ "$state" = done ] && fail "job completed despite the cross-node cancel"
    sleep 0.3
done
[ -n "$CANCELED" ] || fail "cross-node cancel never became terminal: $(cat "$WORK/status2.json")"

# ---- Phase 3: model hot reload ---------------------------------------

# wait_model_fp URL FP: poll /v1/model until the worker serves FP.
wait_model_fp() {
    for i in $(seq 1 50); do
        curl -s "$1/v1/model" >"$WORK/model.json" || true
        [ "$(jsonfield "$WORK/model.json" fingerprint)" = "$2" ] && return 0
        sleep 0.2
    done
    fail "worker at $1 never served model $2: $(cat "$WORK/model.json")"
}

echo "training and promoting model 1 into the registry both workers watch"
"$TRAINBIN" -quick -synth-seeds 1 -kind tree -promote -registry "$MODELS" \
    -out "$WORK/model1.json" >"$WORK/train1.log" 2>&1 \
    || fail "model 1 train/promote failed: $(cat "$WORK/train1.log")"
FP1=$(cat "$MODELS/current")
[ -n "$FP1" ] || fail "registry has no current pointer after the promote"
echo "model 1 promoted ($FP1); waiting for both workers to hot-swap"
wait_model_fp "$A_URL" "$FP1"
wait_model_fp "$B_URL" "$FP1"

echo "submitting a CMM-L job against the promoted model"
curl -s "$A_URL/v1/jobs" \
    -d '{"kind":"comparison","preset":"quick","seeds":[4],"mixes_per_category":1,"policies":["CMM-a","CMM-L"]}' \
    >"$WORK/submit3.json"
JOB3=$(jsonfield "$WORK/submit3.json" id)
[ -n "$JOB3" ] || fail "no CMM-L job id in $(cat "$WORK/submit3.json")"
DONE3=""
for i in $(seq 1 200); do
    curl -s "$A_URL/v1/jobs/$JOB3" >"$WORK/status3.json" || true
    state=$(jsonfield "$WORK/status3.json" state)
    if [ "$state" = done ]; then DONE3=yes; break; fi
    { [ "$state" = failed ] || [ "$state" = canceled ]; } \
        && fail "CMM-L job ended $state: $(cat "$WORK/status3.json")"
    sleep 0.3
done
[ -n "$DONE3" ] || fail "CMM-L job never finished: $(cat "$WORK/status3.json")"
echo "CMM-L job $JOB3 done on the promoted model"

# Simulate a promotion torn mid-write: a half-written envelope whose
# rename landed, with the current pointer already flipped to it. Both
# workers must reject it, keep serving model 1, surface the error on
# /v1/model, and bump the reload-error counter.
echo "corrupting a promotion (garbage envelope, pointer flipped by hand)"
echo '{"schema":"cmm-learn-model","half' >"$MODELS/deadbeefdead.json"
echo deadbeefdead >"$MODELS/current"
for URL in "$A_URL" "$B_URL"; do
    ERRSEEN=""
    for i in $(seq 1 50); do
        curl -s "$URL/v1/model" >"$WORK/model.json" || true
        if grep -q '"last_error"' "$WORK/model.json"; then ERRSEEN=yes; break; fi
        sleep 0.2
    done
    [ -n "$ERRSEEN" ] || fail "worker at $URL never reported the corrupt reload: $(cat "$WORK/model.json")"
    [ "$(jsonfield "$WORK/model.json" fingerprint)" = "$FP1" ] \
        || fail "worker at $URL dropped model 1 on a corrupt promotion: $(cat "$WORK/model.json")"
    errs=$(curl -s "$URL/metrics" | grep -o 'cmm_model_reload_errors_total [0-9]*' | grep -o '[0-9]*$' || echo 0)
    [ "${errs:-0}" -ge 1 ] || fail "worker at $URL shows no reload errors in /metrics"
done
echo "corrupt promotion rejected on both workers; model 1 still serving"

echo "promoting a clean model 2 (logit) to heal the registry"
"$TRAINBIN" -quick -synth-seeds 2 -kind logit -promote -registry "$MODELS" \
    -out "$WORK/model2.json" >"$WORK/train2.log" 2>&1 \
    || fail "model 2 train/promote failed: $(cat "$WORK/train2.log")"
FP2=$(cat "$MODELS/current")
{ [ -n "$FP2" ] && [ "$FP2" != "$FP1" ] && [ "$FP2" != deadbeefdead ]; } \
    || fail "model 2 promotion produced no new fingerprint ($FP2)"
wait_model_fp "$A_URL" "$FP2"
wait_model_fp "$B_URL" "$FP2"
echo "PASS (phase 3): corrupt promotion rejected; both workers hot-swapped to $FP2"
echo "PASS: all three phases"
