#!/usr/bin/env bash
# Two-process fault-tolerance smoke test.
#
# Starts two cmmserve workers on one shared -store directory, submits a
# comparison job, SIGKILLs whichever worker is executing it mid-run, and
# requires the survivor to reap the dead worker's lease and finish the
# job. The shared content-addressed run store makes the takeover cheap:
# every simulation the dead worker completed is served from cache during
# the re-run.
#
# Usage: scripts/two_worker_smoke.sh
# Exits 0 on success; prints a FAIL line and exits 1 otherwise.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
STORE="$WORK/store"
BIN="$WORK/cmmserve"
PORT_A=18290
PORT_B=18291
A_URL="http://127.0.0.1:$PORT_A"
B_URL="http://127.0.0.1:$PORT_B"

A_PID=""
B_PID=""
cleanup() {
    [ -n "$A_PID" ] && kill -9 "$A_PID" 2>/dev/null || true
    [ -n "$B_PID" ] && kill -9 "$B_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- worker A log ---" >&2; cat "$WORK/a.log" >&2 || true
    echo "--- worker B log ---" >&2; cat "$WORK/b.log" >&2 || true
    exit 1
}

# jsonfield FILE KEY -> first scalar value of "KEY" in pretty JSON.
jsonfield() {
    grep -o "\"$2\": *\"[^\"]*\"" "$1" | head -1 | sed 's/.*: *"//; s/"$//'
}

echo "building cmmserve"
go build -o "$BIN" ./cmd/cmmserve

echo "starting workers a and b on shared store $STORE"
"$BIN" -listen "127.0.0.1:$PORT_A" -store "$STORE" -worker-id smoke-a \
    -lease-ttl 2s -scan 300ms >"$WORK/a.log" 2>&1 &
A_PID=$!
"$BIN" -listen "127.0.0.1:$PORT_B" -store "$STORE" -worker-id smoke-b \
    -lease-ttl 2s -scan 300ms >"$WORK/b.log" 2>&1 &
B_PID=$!

for i in $(seq 1 50); do
    ok_a=$(curl -sf "$A_URL/healthz" 2>/dev/null || true)
    ok_b=$(curl -sf "$B_URL/healthz" 2>/dev/null || true)
    [ "$ok_a" = ok ] && [ "$ok_b" = ok ] && break
    [ "$i" = 50 ] && fail "workers did not become healthy"
    sleep 0.2
done

echo "submitting job to worker a"
curl -s "$A_URL/v1/jobs" \
    -d '{"kind":"comparison","preset":"quick","seeds":[1],"mixes_per_category":2}' \
    >"$WORK/submit.json"
JOB=$(jsonfield "$WORK/submit.json" id)
[ -n "$JOB" ] || fail "no job id in $(cat "$WORK/submit.json")"
echo "job $JOB accepted"

# Wait until one worker is executing it and has made real progress, so
# the kill lands mid-job, then identify the runner by the status' worker
# field.
RUNNER=""
for i in $(seq 1 100); do
    curl -s "$A_URL/v1/jobs/$JOB" >"$WORK/status.json" || true
    state=$(jsonfield "$WORK/status.json" state)
    done_runs=$(grep -o '"done": *[0-9]*' "$WORK/status.json" | head -1 | grep -o '[0-9]*' || echo 0)
    if [ "$state" = running ] && [ "${done_runs:-0}" -ge 3 ]; then
        RUNNER=$(jsonfield "$WORK/status.json" worker)
        break
    fi
    [ "$state" = done ] && fail "job finished before the kill window (too fast for this host)"
    sleep 0.3
done
[ -n "$RUNNER" ] || fail "job never reached running with progress: $(cat "$WORK/status.json")"

if [ "$RUNNER" = smoke-a ]; then
    VICTIM_PID=$A_PID; VICTIM=a; SURVIVOR_URL=$B_URL; A_PID=""
else
    VICTIM_PID=$B_PID; VICTIM=b; SURVIVOR_URL=$A_URL; B_PID=""
fi
echo "job running on worker $VICTIM ($done_runs runs done); SIGKILL pid $VICTIM_PID"
kill -9 "$VICTIM_PID"

echo "waiting for the survivor to reap the lease and finish the job"
for i in $(seq 1 400); do
    curl -s "$SURVIVOR_URL/v1/jobs/$JOB" >"$WORK/status.json" || true
    state=$(jsonfield "$WORK/status.json" state)
    if [ "$state" = done ]; then
        attempt=$(grep -o '"attempt": *[0-9]*' "$WORK/status.json" | head -1 | grep -o '[0-9]*' || echo "")
        worker=$(jsonfield "$WORK/status.json" worker)
        echo "job done on worker $worker (attempt ${attempt:-?})"
        curl -sf "$SURVIVOR_URL/v1/jobs/$JOB/result" >"$WORK/result.json" \
            || fail "survivor served no result"
        grep -q '"results"' "$WORK/result.json" || fail "result payload looks wrong"
        echo "PASS: killed worker $VICTIM mid-job; survivor finished it and serves the result"
        exit 0
    fi
    [ "$state" = failed ] && fail "job quarantined instead of finishing: $(cat "$WORK/status.json")"
    sleep 0.5
done
fail "survivor never finished the job: $(cat "$WORK/status.json")"
